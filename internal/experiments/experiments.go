// Package experiments regenerates every table and figure of the reproduced
// paper's evaluation (Section 7), plus the ablations catalogued in
// DESIGN.md. Each experiment returns a report.Figure or report.Table whose
// rows mirror the series the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// All experiments run on the internal/engine sweep harness: grid points
// fan out across a bounded worker pool (see Workers) and reduce in job
// order, so regenerated artifacts are byte-identical at any parallelism.
package experiments

import (
	"context"
	"fmt"

	"multisite/internal/ate"
	"multisite/internal/baseline"
	"multisite/internal/benchdata"
	"multisite/internal/core"
	"multisite/internal/engine"
	"multisite/internal/report"
	"multisite/internal/soc"
	"multisite/internal/solve"
	"multisite/internal/tam"
	"multisite/internal/wafer"
	"multisite/internal/wrapper"
)

// BaseChannels, BaseDepth and BaseClock are the paper's Section 7 target
// test cell for the PNX8550 experiments: N = 512 channels, D = 7 M vectors
// per channel, 5 MHz test clock.
const (
	BaseChannels = 512
	BaseClock    = 5e6
)

// BaseDepth is 7 M vectors.
var BaseDepth = 7 * benchdata.Mi

// Workers bounds the sweep-engine worker pool every experiment fans out
// on; 0 means GOMAXPROCS. cmd/experiments exposes it as -workers. Results
// are byte-identical at any setting.
var Workers int

// DesignMemo, when non-nil, shares Step 1 designs across experiments:
// several artifacts optimize the same (SOC, ATE, TAM) key (the PNX8550
// base cell appears in Fig5, Fig6a/b, Fig7a, CostTrade, ext-cost,
// ext-flow), so a session-long memo designs it once. cmd/experiments sets
// it; the benchmarks leave it nil so each regeneration pays its full,
// comparable cost. Memoization does not change any output bit.
var DesignMemo *engine.Memo

// Solver names the registry backend (internal/solve) every experiment's
// optimization jobs design with; empty means the default heuristic, which
// reproduces the paper's published numbers. cmd/experiments exposes it as
// -solver — rerunning a figure under the exact or baseline backend turns
// any experiment into a backend comparison. Jobs that set their own
// Solver (none of the stock experiments do) keep it.
var Solver string

// PNXConfig builds the standard configuration around the PNX8550
// experiments: given channel count, depth, and broadcast capability, with
// ti = 0.65 s and tc = 0.1 s (see DESIGN.md §4 on these constants).
func PNXConfig(channels int, depth int64, broadcast bool) core.Config {
	return core.Config{
		ATE:   ate.ATE{Channels: channels, Depth: depth, ClockHz: BaseClock, Broadcast: broadcast},
		Probe: ate.DefaultProbeStation(),
	}
}

// SolverJobError is run's panic payload when a job fails under a
// non-default Solver override: experiment grids are known-feasible for
// the heuristic by construction, but a user-selected backend can be
// legitimately infeasible (the exact solver's module bound, a baseline
// regrouping exceeding the ATE's wires), so the CLI recovers this type
// into a clean one-line error instead of a stack trace.
type SolverJobError struct {
	Job    string
	Solver string
	Err    error
}

func (e *SolverJobError) Error() string {
	return fmt.Sprintf("job %s under solver %q: %v", e.Job, e.Solver, e.Err)
}

func (e *SolverJobError) Unwrap() error { return e.Err }

// run fans the jobs across the sweep engine and panics on the first
// failed job. Under the default heuristic a failure is a programming
// error (experiment grids are known-feasible by construction, as they
// were for the old serial harness) and the panic is a plain string;
// under a Solver override the panic carries a *SolverJobError for the
// CLI to recover.
func run(jobs []engine.Job) []engine.JobResult {
	for i := range jobs {
		if jobs[i].Solver == "" {
			jobs[i].Solver = Solver
		}
	}
	results, _ := engine.Run(context.Background(), jobs,
		engine.Options{Workers: Workers, Memo: DesignMemo})
	for i := range results {
		if err := results[i].Err; err != nil {
			if sv := results[i].Job.Solver; sv != "" && sv != solve.DefaultName {
				panic(&SolverJobError{Job: results[i].Job.Name, Solver: sv, Err: err})
			}
			panic(fmt.Sprintf("experiments: job %s: %v", results[i].Job.Name, err))
		}
	}
	return results
}

// optimizeJob runs a single optimization through the engine.
func optimizeJob(name string, s *soc.SOC, cfg core.Config) engine.JobResult {
	return run([]engine.Job{{Name: name, SOC: s, Config: cfg}})[0]
}

// rows computes n experiment rows on the engine's bounded pool, in row
// order. The row function must handle its own infeasible cases (the
// experiments render those as "-" cells); only panics propagate.
func rows[T any](n int, fn func(i int) T) []T {
	out, err := engine.Map(context.Background(), n, Workers, func(_ context.Context, i int) (T, error) {
		return fn(i), nil
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return out
}

// Fig5 reproduces Figure 5: throughput versus number of sites for the
// PNX8550-class SOC on the base ATE, with and without stimuli broadcast,
// with the Step 1-only line shown for the broadcast case (the paper's
// dashed line). The note quantifies the Step 1+2 gain when the usable
// multi-site is capped (the paper reports 34% at its cap).
func Fig5() *report.Figure {
	pnx := benchdata.Shared("pnx8550")
	fig := &report.Figure{
		Title:  "Fig. 5: throughput vs multi-site n (pnx8550, N=512, D=7M, 5MHz)",
		XLabel: "n",
		YLabel: "Dth (devices/hour)",
	}
	res := run([]engine.Job{
		{Name: "pnx8550/nobc", SOC: pnx, Config: PNXConfig(BaseChannels, BaseDepth, false)},
		{Name: "pnx8550/bc", SOC: pnx, Config: PNXConfig(BaseChannels, BaseDepth, true)},
	})
	noBC, bc := &res[0], &res[1]

	s1 := &report.Series{Name: "Step1+2, no broadcast"}
	for n := 1; n <= noBC.Design.MaxSites; n++ {
		s1.Add(float64(n), noBC.Curve[n-1].Throughput)
	}
	s2 := &report.Series{Name: "Step1+2, broadcast"}
	s3 := &report.Series{Name: "Step1 only, broadcast"}
	for n := 1; n <= bc.Design.MaxSites; n++ {
		s2.Add(float64(n), bc.Curve[n-1].Throughput)
		s3.Add(float64(n), bc.Step1Curve[n-1].Throughput)
	}
	fig.Series = []*report.Series{s1, s2, s3}

	capN := 8
	gain := bc.GainOverStep1(capN)
	figNote(fig, fmt.Sprintf("no broadcast: nmax=%d nopt=%d Dth=%.0f; broadcast: nmax=%d nopt=%d Dth=%.0f",
		noBC.Design.MaxSites, noBC.Best.Sites, noBC.Best.Throughput,
		bc.Design.MaxSites, bc.Best.Sites, bc.Best.Throughput))
	figNote(fig, fmt.Sprintf("Step1+2 gain over Step1-only with multi-site capped at n=%d: %.0f%% (paper: 34%%)",
		capN, 100*gain))
	return fig
}

// figNotes carries per-figure notes; report.Figure has no note field, so
// experiments attach them to the rendered table via a side map.
var figNotes = map[*report.Figure][]string{}

func figNote(f *report.Figure, note string) { figNotes[f] = append(figNotes[f], note) }

// Render renders a figure with its attached notes.
func Render(f *report.Figure) string {
	t := f.Table()
	t.Notes = append(t.Notes, figNotes[f]...)
	return t.String()
}

// Fig6a reproduces Figure 6(a): throughput versus ATE channel count
// 512…1024 at D = 7 M (no broadcast). The paper's observation: throughput
// scales linearly in the channel count, because sites scale linearly while
// the per-site test time is unchanged.
func Fig6a() *report.Figure {
	pnx := benchdata.Shared("pnx8550")
	fig := &report.Figure{
		Title:  "Fig. 6(a): throughput vs ATE channels (pnx8550, D=7M)",
		XLabel: "N channels",
		YLabel: "Dth",
	}
	g := engine.Grid{
		SOCs:     []*soc.SOC{pnx},
		Channels: engine.IntRange(512, 1024, 64),
		Depths:   []int64{BaseDepth},
		ClockHz:  BaseClock,
		Probe:    ate.DefaultProbeStation(),
	}
	s := &report.Series{Name: "Dth (devices/hour)"}
	for _, r := range run(g.Jobs()) {
		s.Add(float64(r.Job.Config.ATE.Channels), r.Best.Throughput)
	}
	fig.Series = []*report.Series{s}
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	figNote(fig, fmt.Sprintf("N 512→1024: Dth %.0f→%.0f (x%.2f; paper: doubling channels doubles throughput)",
		first, last, last/first))
	return fig
}

// Fig6b reproduces Figure 6(b): throughput versus vector memory depth
// 5…14 M at N = 512 (no broadcast). The paper's observation: throughput
// grows sub-linearly in depth, because deeper memory both increases the
// multi-site and lengthens the per-SOC test.
func Fig6b() *report.Figure {
	pnx := benchdata.Shared("pnx8550")
	fig := &report.Figure{
		Title:  "Fig. 6(b): throughput vs vector memory depth (pnx8550, N=512)",
		XLabel: "depth (M)",
		YLabel: "Dth",
	}
	g := engine.Grid{
		SOCs:     []*soc.SOC{pnx},
		Channels: []int{BaseChannels},
		Depths:   engine.DepthRange(5*benchdata.Mi, 14*benchdata.Mi, benchdata.Mi),
		ClockHz:  BaseClock,
		Probe:    ate.DefaultProbeStation(),
	}
	s := &report.Series{Name: "Dth (devices/hour)"}
	for _, r := range run(g.Jobs()) {
		s.Add(float64(r.Job.Config.ATE.Depth/benchdata.Mi), r.Best.Throughput)
	}
	fig.Series = []*report.Series{s}
	var d7, d14 float64
	for i, x := range s.X {
		if x == 7 {
			d7 = s.Y[i]
		}
		if x == 14 {
			d14 = s.Y[i]
		}
	}
	figNote(fig, fmt.Sprintf("D 7M→14M: Dth %.0f→%.0f (+%.0f%%; paper: +27%%, sub-linear)",
		d7, d14, 100*(d14/d7-1)))
	return fig
}

// CostTrade reproduces the Section 7 cost comparison: doubling the vector
// memory of all 512 channels versus spending the same money on extra
// channels.
func CostTrade() *report.Table {
	pnx := benchdata.Shared("pnx8550")
	prices := ate.DefaultPriceModel()
	budget := prices.DoubleDepthCostUSD(ate.ATE{Channels: BaseChannels, Depth: BaseDepth, ClockHz: BaseClock})
	extraCh := prices.ChannelsForBudgetUSD(budget)

	res := run([]engine.Job{
		{Name: "base", SOC: pnx, Config: PNXConfig(BaseChannels, BaseDepth, false)},
		{Name: "deeper", SOC: pnx, Config: PNXConfig(BaseChannels, 2*BaseDepth, false)},
		{Name: "wider", SOC: pnx, Config: PNXConfig(BaseChannels+extraCh, BaseDepth, false)},
	})
	base, deeper, wider := &res[0], &res[1], &res[2]

	t := &report.Table{
		Title:  "Section 7 cost trade-off: memory depth vs channels (pnx8550)",
		Header: []string{"upgrade", "cost (USD)", "N", "D", "n_opt", "Dth", "gain"},
	}
	row := func(name string, cost float64, r *engine.JobResult, chs int, depth int64) {
		gain := r.Best.Throughput/base.Best.Throughput - 1
		t.AddRow(name, int(cost), chs, fmt.Sprintf("%dM", depth/benchdata.Mi),
			r.Best.Sites, r.Best.Throughput, fmt.Sprintf("%+.0f%%", 100*gain))
	}
	row("base", 0, base, BaseChannels, BaseDepth)
	row("double memory", budget, deeper, BaseChannels, 2*BaseDepth)
	row(fmt.Sprintf("+%d channels", extraCh), budget, wider, BaseChannels+extraCh, BaseDepth)
	t.Notes = append(t.Notes,
		"paper: for equal money, doubling memory gains +27% vs +18% for channels — memory wins")
	return t
}

// Fig7a reproduces Figure 7(a): unique throughput versus vector memory
// depth for contact yields pc ∈ {1, .9999, .9998, .999, .998, .99}, with
// re-testing of contact failures. Deeper memory means fewer contacted
// channels per device, hence a lower re-test rate. The grid runs 60 jobs
// over 10 design keys: the engine memo designs each depth once and
// re-scores it per contact yield.
func Fig7a() *report.Figure {
	pnx := benchdata.Shared("pnx8550")
	fig := &report.Figure{
		Title:  "Fig. 7(a): unique throughput vs depth under re-test (pnx8550, N=512)",
		XLabel: "depth (M)",
		YLabel: "Du (unique devices/hour)",
	}
	yields := []float64{1, 0.9999, 0.9998, 0.999, 0.998, 0.99}
	series := make([]*report.Series, len(yields))
	for i, pc := range yields {
		series[i] = &report.Series{Name: fmt.Sprintf("pc=%g", pc)}
	}
	g := engine.Grid{
		SOCs:          []*soc.SOC{pnx},
		Channels:      []int{BaseChannels},
		Depths:        engine.DepthRange(5*benchdata.Mi, 14*benchdata.Mi, benchdata.Mi),
		ClockHz:       BaseClock,
		Probe:         ate.DefaultProbeStation(),
		ContactYields: yields,
		Retest:        []bool{true},
	}
	// Grid order: depth varies slower than contact yield.
	for i, r := range run(g.Jobs()) {
		series[i%len(yields)].Add(float64(r.Job.Config.ATE.Depth/benchdata.Mi), r.Best.UniqueThroughput)
	}
	fig.Series = series
	figNote(fig, "paper: the penalty of low contact yield shrinks as memory deepens (fewer contacted pins)")
	return fig
}

// Fig7b reproduces Figure 7(b): the expected test application time under
// abort-on-fail versus the number of sites, for manufacturing yields
// pm ∈ {1, .98, .95, .90, .80, .70}. Multi-site testing quickly erases the
// benefit of abort-on-fail: beyond a handful of sites some site almost
// surely keeps passing, so the full test always runs.
func Fig7b() *report.Figure {
	pnx := benchdata.Shared("pnx8550")
	res := optimizeJob("pnx8550", pnx, PNXConfig(BaseChannels, BaseDepth, false))
	tm := res.Design.Step1.TestCycles()
	tmSec := float64(tm) / BaseClock
	fig := &report.Figure{
		Title:  "Fig. 7(b): abort-on-fail test time vs sites (pnx8550, tm full = " + fmt.Sprintf("%.3fs", tmSec) + ")",
		XLabel: "n sites",
		YLabel: "expected test time (s)",
	}
	yields := []float64{1, 0.98, 0.95, 0.90, 0.80, 0.70}
	for _, pm := range yields {
		s := &report.Series{Name: fmt.Sprintf("pm=%g", pm)}
		for n := 1; n <= 8; n++ {
			cfg := res.Job.Config
			cfg.Yield = pm
			cfg.AbortOnFail = true
			s.Add(float64(n), effectiveManufTime(cfg, res.Design.Step1, n))
		}
		fig.Series = append(fig.Series, s)
	}
	figNote(fig, "paper: abort-on-fail benefit becomes invisible beyond n≈4 even at 70% yield")
	return fig
}

// effectiveManufTime returns the Eq. 4.4 expected manufacturing test time
// P'c·P'm·tm for the architecture at n sites.
func effectiveManufTime(cfg core.Config, arch *tam.Architecture, n int) float64 {
	e := cfg.EvaluateAt(arch, n)
	// Throughput = 3600n/(ti+tc+teff) ⇒ teff = 3600n/Dth − ti − tc.
	teff := 3600*float64(n)/e.Throughput - cfg.Probe.IndexTime - cfg.Probe.ContactTime
	return teff
}

// Table1SOC describes one column block of Table 1.
type Table1SOC struct {
	// Name is the benchmark name.
	Name string
	// Channels is the ATE channel count the paper used for this SOC.
	Channels int
	// Depths are the vector memory depths of the 11 rows.
	Depths []int64
}

// Table1SOCs returns the paper's Table 1 configuration: d695 on a 256-
// channel ATE, the three Philips chips on 512 channels, with the paper's
// depth sweeps (K = 2^10, M = 2^20 vectors).
func Table1SOCs() []Table1SOC {
	return []Table1SOC{
		{Name: "d695", Channels: 256, Depths: engine.DepthRange(48*benchdata.Ki, 128*benchdata.Ki, 8*benchdata.Ki)},
		{Name: "p22810", Channels: 512, Depths: engine.DepthRange(384*benchdata.Ki, 1024*benchdata.Ki, 64*benchdata.Ki)},
		{Name: "p34392", Channels: 512, Depths: engine.DepthRange(768*benchdata.Ki, 2048*benchdata.Ki, 128*benchdata.Ki)},
		{Name: "p93791", Channels: 512, Depths: engine.DepthRange(1024*benchdata.Ki, 3584*benchdata.Ki, 256*benchdata.Ki)},
	}
}

// DepthLabel renders a depth in the paper's Table 1 style.
func DepthLabel(d int64) string {
	if d < benchdata.Mi {
		return fmt.Sprintf("%dK", d/benchdata.Ki)
	}
	return fmt.Sprintf("%.3fM", float64(d)/float64(benchdata.Mi))
}

// Table1 reproduces Table 1: for each benchmark SOC and memory depth, the
// theoretical lower bound on the channel count, the rectangle bin-packing
// baseline of [7], and our Step 1 — channels k and maximum multi-site
// nmax, under stimuli broadcast (the comparison basis the paper uses).
// The 44 rows are independent designs and fan out across the engine pool.
func Table1() *report.Table {
	t := &report.Table{
		Title:  "Table 1: maximum multi-site, rectangle bin-packing [7] vs our Step 1 (broadcast)",
		Header: []string{"SOC", "depth", "LB k", "[7] k", "us k", "[7] nmax", "us nmax"},
	}
	type point struct {
		soc   Table1SOC
		depth int64
	}
	var points []point
	for _, cfgSOC := range Table1SOCs() {
		for _, depth := range cfgSOC.Depths {
			points = append(points, point{cfgSOC, depth})
		}
	}
	for _, cells := range rows(len(points), func(i int) []interface{} {
		cfgSOC, depth := points[i].soc, points[i].depth
		s := benchdata.Shared(cfgSOC.Name)
		target := ate.ATE{Channels: cfgSOC.Channels, Depth: depth, ClockHz: BaseClock, Broadcast: true}
		lb, ok := baseline.LowerBoundChannels(s, target)
		if !ok {
			return []interface{}{cfgSOC.Name, DepthLabel(depth), "-", "-", "-", "-", "-"}
		}
		pk, errB := baseline.Design(s, target)
		arch, errU := tam.DesignStep1(s, target)
		baseK, baseN := "-", "-"
		if errB == nil {
			baseK = fmt.Sprint(pk.Channels())
			baseN = fmt.Sprint(target.MaxSites(pk.Channels()))
		}
		usK, usN := "-", "-"
		if errU == nil {
			usK = fmt.Sprint(arch.Channels())
			usN = fmt.Sprint(target.MaxSites(arch.Channels()))
		}
		return []interface{}{cfgSOC.Name, DepthLabel(depth), lb, baseK, usK, baseN, usN}
	}) {
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"d695 uses the literature module data; p-chips are calibrated synthetics (DESIGN.md §4)",
		"nmax = floor((2N-k)/k) under stimuli broadcast; N=256 (d695) / 512 (p-chips)")
	return t
}

// AblationOptionRule compares Step 1's paper rule (choose the option with
// maximum free memory) against always-new-group and prefer-widen, on every
// benchmark at a representative depth.
func AblationOptionRule() *report.Table {
	t := &report.Table{
		Title:  "Ablation: Step 1 option rule (channels k / test kcycles)",
		Header: []string{"SOC", "depth", "max-free-mem k", "cyc", "new-group k", "cyc", "widen k", "cyc"},
	}
	cases := []struct {
		name  string
		n     int
		depth int64
	}{
		{"d695", 256, 64 * benchdata.Ki},
		{"p22810", 512, 512 * benchdata.Ki},
		{"p34392", 512, benchdata.Mi},
		{"p93791", 512, 2 * benchdata.Mi},
		{"pnx8550", 512, 7 * benchdata.Mi},
	}
	for _, row := range rows(len(cases), func(i int) []interface{} {
		c := cases[i]
		s := benchdata.Shared(c.name)
		target := ate.ATE{Channels: c.n, Depth: c.depth, ClockHz: BaseClock}
		row := []interface{}{c.name, DepthLabel(c.depth)}
		for _, rule := range []tam.OptionRule{tam.RuleMaxFreeMemory, tam.RuleAlwaysNewGroup, tam.RulePreferWiden} {
			arch, err := tam.DesignStep1With(s, target, tam.Options{Rule: rule})
			if err != nil {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, arch.Channels(), arch.TestCycles()/1000)
		}
		return row
	}) {
		t.AddRow(row...)
	}
	return t
}

// AblationWrapper compares COMBINE (Fit: best chain count ≤ w) against
// plain LPT (FitExact: exactly w chains) by total module test time at
// several TAM widths on d695.
func AblationWrapper() *report.Table {
	t := &report.Table{
		Title:  "Ablation: COMBINE vs plain-LPT wrapper fit (d695, total module kcycles)",
		Header: []string{"width", "COMBINE", "plain LPT", "LPT penalty"},
	}
	s := benchdata.Shared("d695")
	widths := []int{2, 4, 8, 12, 16, 24, 32}
	for _, row := range rows(len(widths), func(i int) []interface{} {
		w := widths[i]
		var combine, lpt int64
		for _, mi := range s.TestableModules() {
			m := &s.Modules[mi]
			combine += wrapper.Fit(m, w).Time
			lpt += wrapper.FitExact(m, w).Time
		}
		return []interface{}{w, combine / 1000, lpt / 1000,
			fmt.Sprintf("%+.1f%%", 100*(float64(lpt)/float64(combine)-1))}
	}) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"finding: with balanced chains, plain LPT at maximal chain count already matches COMBINE's search")
	return t
}

// WaferPeriphery quantifies the multi-site periphery losses the paper
// ignores: probe-card utilization on a 300 mm wafer for growing site
// grids.
func WaferPeriphery() *report.Table {
	t := &report.Table{
		Title:  "Extension: wafer periphery losses vs probe-card site grid (300mm wafer, 10x10mm die)",
		Header: []string{"grid", "sites", "touchdowns", "dies probed", "wasted sites", "utilization"},
	}
	grids := [][2]int{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 2}, {8, 4}, {16, 1}}
	for _, g := range grids {
		l := wafer.Layout{WaferDiameterMM: 300, DieWidthMM: 10, DieHeightMM: 10,
			SitesX: g[0], SitesY: g[1]}
		p := l.Step()
		t.AddRow(fmt.Sprintf("%dx%d", g[0], g[1]), l.Sites(), p.Touchdowns,
			p.DiesProbed, p.WastedSites, fmt.Sprintf("%.3f", p.Utilization()))
	}
	t.Notes = append(t.Notes, "the paper assumes utilization 1.0; larger probe arrays pay real periphery losses")
	return t
}
