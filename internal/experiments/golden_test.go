package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"multisite/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden experiment outputs")

// goldenCases are the fully deterministic experiment artifacts pinned as
// golden files: any change to the algorithms that shifts a reproduced
// number shows up as a diff here.
func goldenCases() map[string]func() *report.Table {
	return map[string]func() *report.Table{
		"table1":    Table1,
		"fig7b":     func() *report.Table { return Fig7b().Table() },
		"abl3":      WaferPeriphery,
		"ext-exact": ExtExactGap,
	}
}

func TestGolden(t *testing.T) {
	for name, run := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got := run().String()
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
