package experiments

import (
	"fmt"
	"strings"
	"testing"

	"multisite/internal/benchdata"
)

// These are the repository's end-to-end integration tests: each one
// regenerates a paper artifact and asserts the paper's qualitative claim
// about it (the "shape": who wins, monotonicity, crossovers).

// TestRunSolverInfeasibilityPanicsTyped pins the contract cmd/experiments'
// clean -solver error path rests on: a job failing under a non-default
// Solver override panics with *SolverJobError (recoverable into a one-line
// CLI error), while the default heuristic keeps the loud string panic for
// genuine programming errors.
func TestRunSolverInfeasibilityPanicsTyped(t *testing.T) {
	old := Solver
	Solver = "exact" // pnx8550's 274 testable modules exceed exact.MaxModules
	defer func() {
		Solver = old
		p := recover()
		je, ok := p.(*SolverJobError)
		if !ok {
			t.Fatalf("run panicked with %T (%v), want *SolverJobError", p, p)
		}
		if je.Solver != "exact" || je.Unwrap() == nil ||
			!strings.Contains(je.Error(), "exceed the exact-search limit") {
			t.Errorf("unexpected SolverJobError: %v", je)
		}
	}()
	optimizeJob("pnx", benchdata.Shared("pnx8550"), PNXConfig(BaseChannels, BaseDepth, false))
	t.Fatal("run did not panic on an infeasible solver override")
}

func TestFig5Shape(t *testing.T) {
	fig := Fig5()
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	var noBC, bc, bcStep1 = fig.Series[0], fig.Series[1], fig.Series[2]
	if len(bc.Y) <= len(noBC.Y) {
		t.Errorf("broadcast should reach more sites: %d vs %d", len(bc.Y), len(noBC.Y))
	}
	// Step 1+2 dominates Step 1-only pointwise.
	for i := range bcStep1.Y {
		if bc.Y[i]+1e-6 < bcStep1.Y[i] {
			t.Errorf("n=%.0f: Step1+2 %g below Step1-only %g", bc.X[i], bc.Y[i], bcStep1.Y[i])
		}
	}
	// The paper's dip-and-recover: the Step1+2 curve is not monotone in
	// n (redistribution pays off at some smaller site count).
	monotone := true
	for i := 1; i < len(bc.Y); i++ {
		if bc.Y[i] < bc.Y[i-1] {
			monotone = false
			break
		}
	}
	if monotone {
		t.Error("broadcast Step1+2 curve is monotone; expected the paper's dip-and-recover")
	}
	out := Render(fig)
	if !strings.Contains(out, "gain over Step1-only") {
		t.Errorf("missing gain note:\n%s", out)
	}
}

func TestFig6aLinearScaling(t *testing.T) {
	fig := Fig6a()
	s := fig.Series[0]
	if len(s.Y) != 9 {
		t.Fatalf("points = %d, want 9 (512..1024 step 64)", len(s.Y))
	}
	// Paper: doubling the channels doubles the throughput (±10% for
	// site quantization).
	ratio := s.Y[len(s.Y)-1] / s.Y[0]
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("N 512→1024 ratio = %.2f, want ≈ 2", ratio)
	}
	// Monotone non-decreasing in channels.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-1e-6 {
			t.Errorf("throughput dropped when adding channels: %g → %g", s.Y[i-1], s.Y[i])
		}
	}
}

func TestFig6bSubLinear(t *testing.T) {
	fig := Fig6b()
	s := fig.Series[0]
	if len(s.Y) != 10 {
		t.Fatalf("points = %d, want 10 (5..14 M)", len(s.Y))
	}
	var d7, d14 float64
	for i, x := range s.X {
		if x == 7 {
			d7 = s.Y[i]
		}
		if x == 14 {
			d14 = s.Y[i]
		}
	}
	if d14 <= d7 {
		t.Errorf("deeper memory did not help: %g vs %g", d14, d7)
	}
	// Paper: doubling memory gains clearly less than 2x (sub-linear;
	// they report +27%).
	if gain := d14 / d7; gain > 1.6 {
		t.Errorf("memory doubling gain %.2f not sub-linear", gain)
	}
	// Base operating point matches the paper's Fig. 6 magnitude.
	if d7 < 0.9e4 || d7 > 1.7e4 {
		t.Errorf("base throughput %g outside the paper's 1.3e4 ballpark", d7)
	}
}

func TestCostTradeMemoryWins(t *testing.T) {
	tbl := CostTrade()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	// Row layout: name, cost, N, D, n_opt, Dth, gain.
	parse := func(row []string) float64 {
		var v float64
		if _, err := sscan(row[5], &v); err != nil {
			t.Fatalf("bad Dth cell %q", row[5])
		}
		return v
	}
	base := parse(tbl.Rows[0])
	memory := parse(tbl.Rows[1])
	channels := parse(tbl.Rows[2])
	if memory <= base || channels <= base {
		t.Errorf("upgrades did not help: base %g, memory %g, channels %g", base, memory, channels)
	}
	// The paper's conclusion: for equal money, memory depth wins.
	if memory <= channels {
		t.Errorf("memory upgrade (%g) should beat channel upgrade (%g)", memory, channels)
	}
}

func TestFig7aContactYieldOrdering(t *testing.T) {
	fig := Fig7a()
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	// At every depth, lower contact yield means lower unique
	// throughput (series are ordered pc = 1 … 0.99).
	for x := 0; x < len(fig.Series[0].Y); x++ {
		for si := 1; si < len(fig.Series); si++ {
			hi := fig.Series[si-1].Y[x]
			lo := fig.Series[si].Y[x]
			if lo > hi+1e-6 {
				t.Errorf("depth %gM: pc series %d (%g) above cleaner series (%g)",
					fig.Series[0].X[x], si, lo, hi)
			}
		}
	}
	// Paper: the low-yield penalty shrinks with depth. Compare the
	// relative gap at the shallowest and deepest memory.
	first, last := 0, len(fig.Series[0].Y)-1
	gapShallow := 1 - fig.Series[5].Y[first]/fig.Series[0].Y[first]
	gapDeep := 1 - fig.Series[5].Y[last]/fig.Series[0].Y[last]
	if gapDeep >= gapShallow {
		t.Errorf("pc=0.99 penalty did not shrink with depth: %.3f → %.3f", gapShallow, gapDeep)
	}
}

func TestFig7bAbortWashout(t *testing.T) {
	fig := Fig7b()
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	full := fig.Series[0] // pm = 1: the full test time at every n
	for i := 1; i < len(full.Y); i++ {
		if full.Y[i] != full.Y[0] {
			t.Errorf("pm=1 series not flat: %v", full.Y)
		}
	}
	for _, s := range fig.Series[1:] {
		// Each series rises with n (less abort benefit) and
		// converges to the full time.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Errorf("%s: effective time fell with more sites", s.Name)
			}
		}
		last := s.Y[len(s.Y)-1]
		if rel := (full.Y[0] - last) / full.Y[0]; rel > 0.01 {
			t.Errorf("%s: at n=8 still %.1f%% below full time", s.Name, 100*rel)
		}
	}
	// At n = 1 the pm = 0.7 series must show a real saving.
	low := fig.Series[5]
	if rel := (full.Y[0] - low.Y[0]) / full.Y[0]; rel < 0.2 {
		t.Errorf("pm=0.7 at n=1 saves only %.1f%%", 100*rel)
	}
}

func TestTable1Complete(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 44 {
		t.Fatalf("rows = %d, want 44 (4 SOCs × 11 depths)", len(tbl.Rows))
	}
	socs := map[string]int{}
	for _, row := range tbl.Rows {
		socs[row[0]]++
		for c, cell := range row {
			if cell == "" {
				t.Errorf("row %v: empty cell %d", row, c)
			}
		}
	}
	for _, name := range []string{"d695", "p22810", "p34392", "p93791"} {
		if socs[name] != 11 {
			t.Errorf("%s has %d rows, want 11", name, socs[name])
		}
	}
}

func TestTable1D695MatchesPaper(t *testing.T) {
	// The d695 block uses real module data, so our Step 1 channel
	// counts should match the paper's "Us" column (the 56K row is the
	// single known +2 deviation of our heuristic).
	want := map[string]string{
		"48K": "28", "64K": "22", "72K": "20", "80K": "18", "88K": "16",
		"96K": "14", "104K": "14", "112K": "12", "120K": "12", "128K": "12",
	}
	tbl := Table1()
	for _, row := range tbl.Rows {
		if row[0] != "d695" {
			continue
		}
		if wantK, ok := want[row[1]]; ok && row[4] != wantK {
			t.Errorf("d695 %s: us k = %s, want %s (paper)", row[1], row[4], wantK)
		}
	}
}

func TestTable1OursMatchesBaselineSites(t *testing.T) {
	// The paper reports a higher multi-site than [7] in all rows but
	// one; part of that edge comes from [7]'s more pessimistic site
	// accounting, which the published text does not specify and we do
	// not reproduce. Under a unified site formula the defensible claim
	// is: our Step 1 matches the packing baseline in the large majority
	// of rows and never trails by more than one site (see
	// EXPERIMENTS.md, deviation D2).
	tbl := Table1()
	ties, losses := 0, 0
	for _, row := range tbl.Rows {
		var baseN, usN int
		if _, err := sscan(row[5], &baseN); err != nil {
			continue
		}
		if _, err := sscan(row[6], &usN); err != nil {
			continue
		}
		switch {
		case usN == baseN:
			ties++
		case usN < baseN:
			losses++
			if baseN-usN > 2 {
				t.Errorf("%s %s: trails baseline by %d sites (%d vs %d)",
					row[0], row[1], baseN-usN, usN, baseN)
			}
		}
	}
	if ties < 40 {
		t.Errorf("only %d of 44 rows tie the baseline (losses: %d)", ties, losses)
	}
}

func TestTable1OursMatchesLowerBoundMostly(t *testing.T) {
	// The paper's own claim about its k column: "In most cases, our
	// algorithm matches the lower bound."
	tbl := Table1()
	match, total := 0, 0
	for _, row := range tbl.Rows {
		var lb, us int
		if _, err := sscan(row[2], &lb); err != nil {
			continue
		}
		if _, err := sscan(row[4], &us); err != nil {
			continue
		}
		total++
		if us == lb {
			match++
		}
	}
	if match*2 < total {
		t.Errorf("ours matches LB in only %d of %d rows", match, total)
	}
}

func TestTable1LBNeverExceeded(t *testing.T) {
	tbl := Table1()
	for _, row := range tbl.Rows {
		var lb, us int
		if _, err := sscan(row[2], &lb); err != nil {
			continue
		}
		if _, err := sscan(row[4], &us); err != nil {
			continue
		}
		if us < lb {
			t.Errorf("%s %s: us k=%d below lower bound %d", row[0], row[1], us, lb)
		}
	}
}

func TestAblationOptionRule(t *testing.T) {
	tbl := AblationOptionRule()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	// The paper's rule must never be worse in channels than the best
	// ablated rule by more than a small margin... at minimum, all rules
	// must produce feasible architectures for every benchmark.
	for _, row := range tbl.Rows {
		for _, cell := range row[2:] {
			if cell == "-" {
				t.Errorf("rule infeasible on %s", row[0])
			}
		}
	}
}

func TestAblationWrapper(t *testing.T) {
	tbl := AblationWrapper()
	if len(tbl.Rows) == 0 {
		t.Fatal("empty ablation")
	}
	for _, row := range tbl.Rows {
		var combine, lpt int
		if _, err := sscan(row[1], &combine); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if _, err := sscan(row[2], &lpt); err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if combine > lpt {
			t.Errorf("width %s: COMBINE %d worse than LPT %d", row[0], combine, lpt)
		}
	}
}

func TestWaferPeriphery(t *testing.T) {
	tbl := WaferPeriphery()
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][5] != "1.000" {
		t.Errorf("1x1 utilization = %s, want 1.000", tbl.Rows[0][5])
	}
}

func TestDepthLabel(t *testing.T) {
	if got := DepthLabel(48 * benchdata.Ki); got != "48K" {
		t.Errorf("DepthLabel = %q", got)
	}
	if got := DepthLabel(benchdata.Mi + benchdata.Mi/4); got != "1.250M" {
		t.Errorf("DepthLabel = %q", got)
	}
}

// sscan parses a single value from a cell.
func sscan(cell string, v interface{}) (int, error) {
	return fmtSscan(cell, v)
}

func fmtSscan(cell string, v interface{}) (int, error) {
	return fmt.Sscan(cell, v)
}
