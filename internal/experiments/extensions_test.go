package experiments

import (
	"strings"
	"testing"
)

func TestExtExactGapAllZero(t *testing.T) {
	tbl := ExtExactGap()
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "0" {
			t.Errorf("d695 %s: heuristic gap %s wires (want provably optimal)", row[1], row[4])
		}
		// The exact optimum can never beat the lower bound.
		var lb, exactK int
		if _, err := sscan(row[2], &lb); err != nil {
			continue
		}
		if _, err := sscan(row[3], &exactK); err != nil {
			continue
		}
		if exactK < lb {
			t.Errorf("%s: exact %d below LB %d", row[1], exactK, lb)
		}
	}
}

func TestExtControlOverhead(t *testing.T) {
	tbl := ExtControlOverhead()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		frac := row[5]
		if !strings.HasSuffix(frac, "%") {
			t.Fatalf("bad overhead cell %q", frac)
		}
		var v float64
		if _, err := sscan(strings.TrimSuffix(frac, "%"), &v); err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "pnx8550":
			// The monster chip's serial WIR chain is the one place
			// the paper's neglect-control assumption strains.
			if v < 1 || v > 10 {
				t.Errorf("pnx8550 overhead %.2f%% outside expected 1-10%%", v)
			}
		default:
			if v >= 1 {
				t.Errorf("%s overhead %.2f%% should be below 1%%", row[0], v)
			}
		}
	}
}

func TestExtSchedulingGainNonNegative(t *testing.T) {
	tbl := ExtSchedulingGain()
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 SOCs x 3 yields)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		var before, after float64
		if _, err := sscan(row[2], &before); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &after); err != nil {
			t.Fatal(err)
		}
		if after > before*(1+1e-9) {
			t.Errorf("%s yield %s: ordering increased E[cycles] %g → %g",
				row[0], row[1], before, after)
		}
	}
}

func TestExtCostPerDeviceMonotoneDown(t *testing.T) {
	tbl := ExtCostPerDevice()
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var first, last float64
	if _, err := sscan(tbl.Rows[0][2], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[len(tbl.Rows)-1][2], &last); err != nil {
		t.Fatal(err)
	}
	// The paper's motivation: multi-site testing slashes cost/device.
	if last >= first/2 {
		t.Errorf("cost per device only fell %g → %g; expected better than 2x", first, last)
	}
}

func TestExtTestFlowWaferOutparallelizesFinal(t *testing.T) {
	tbl := ExtTestFlow()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var waferD, finalD float64
	if _, err := sscan(tbl.Rows[0][3], &waferD); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[1][3], &finalD); err != nil {
		t.Fatal(err)
	}
	// The Section 3 asymmetry: the E-RPCT wafer stage far outruns the
	// all-pins final stage on the same tester class.
	if waferD <= 2*finalD {
		t.Errorf("wafer %g not clearly above final %g", waferD, finalD)
	}
	var retestD float64
	if _, err := sscan(tbl.Rows[2][3], &retestD); err != nil {
		t.Fatal(err)
	}
	if retestD >= finalD {
		t.Error("internal re-test at final should cost throughput")
	}
}

func TestExtFamilySweep(t *testing.T) {
	tbl := ExtFamilySweep()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// At depth = A every chip fits on very few channels; k must be
		// monotone non-increasing as depth grows across the row.
		prev := 1 << 30
		for _, cell := range row[3:] {
			if cell == "-" {
				continue // infeasible shallow depth on bottleneck chips
			}
			var k int
			if _, err := sscan(cell, &k); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if k > prev {
				t.Errorf("%s: k rose with deeper memory (%v)", row[0], row[3:])
			}
			prev = k
		}
	}
	// The bottleneck chips must be infeasible at the shallowest depth.
	for _, row := range tbl.Rows {
		switch row[0] {
		case "h953", "a586710", "t512505":
			if row[3] != "-" {
				t.Errorf("%s expected infeasible at A/8, got %s", row[0], row[3])
			}
		}
	}
}

func TestExtTDCComposes(t *testing.T) {
	tbl := ExtTDC()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var prevD float64
	for i, row := range tbl.Rows {
		var d float64
		if _, err := sscan(row[5], &d); err != nil {
			t.Fatalf("bad Dth cell %q", row[5])
		}
		if i > 0 && d <= prevD {
			t.Errorf("compression %s did not raise throughput: %g after %g", row[0], d, prevD)
		}
		prevD = d
	}
	// 2x compression must roughly double throughput (composition).
	var d1, d2 float64
	if _, err := sscan(tbl.Rows[0][5], &d1); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[1][5], &d2); err != nil {
		t.Fatal(err)
	}
	if ratio := d2 / d1; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2x TDC gives x%.2f throughput, want ≈2x", ratio)
	}
}

func TestExtBitValAllAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("family-wide bit-accurate simulation; skipped in -short")
	}
	tbl := ExtBitVal()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (Table 1 SOCs + pnx8550)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Errorf("%s: simulated cycles diverge from the analytic model", row[0])
		}
		if row[8] != "true" {
			t.Errorf("%s: event, bit and lane simulators disagree on the first-fail cycle", row[0])
		}
	}
}
