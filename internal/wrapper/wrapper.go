// Package wrapper implements test wrapper design for embedded cores,
// following the COMBINE algorithm of Marinissen, Goel, and Lousberg,
// "Wrapper Design for Embedded Core Test" (ITC 2000) — reference [14] of the
// reproduced paper.
//
// A wrapper for TAM width w concatenates the module's internal scan chains
// and its wrapper input/output cells into at most w wrapper chains. The
// scan-in length si of a wrapper chain is its internal scan cells plus its
// wrapper input cells; the scan-out length so is its internal scan cells
// plus its wrapper output cells. With p test patterns, pipelined
// shift-in/shift-out gives the module test time (in test clock cycles)
//
//	T(w) = (1 + max(si*, so*)) · p + min(si*, so*)
//
// where si*/so* are the maxima over the wrapper chains. COMBINE balances
// the chains with Largest Processing Time first (LPT) partitioning of the
// internal scan chains and greedy water-filling of the wrapper cells, and
// tries every wrapper chain count c ≤ w, so the resulting T(w) is
// non-increasing in w by construction.
package wrapper

import (
	"fmt"
	"sort"

	"multisite/internal/soc"
)

// Design describes one concrete wrapper configuration for a module.
type Design struct {
	// Width is the TAM width the design was requested for.
	Width int
	// Chains is the number of wrapper chains actually used (≤ Width).
	Chains int
	// ScanIn[i] is the scan-in length of wrapper chain i (internal scan
	// cells + wrapper input cells on that chain).
	ScanIn []int
	// ScanOut[i] is the scan-out length of wrapper chain i.
	ScanOut []int
	// ScanCells[i] is the number of internal scan flip-flops on chain i.
	ScanCells []int
	// InCells[i] / OutCells[i] are the wrapper input/output cells on
	// chain i.
	InCells, OutCells []int
	// MaxIn and MaxOut are the maxima of ScanIn and ScanOut.
	MaxIn, MaxOut int
	// Time is the module test time in clock cycles for this design.
	Time int64
	// Patterns echoes the module pattern count used.
	Patterns int
}

// TestTime returns the test time in cycles for per-chain scan-in/scan-out
// maxima si, so and p patterns.
func TestTime(si, so, p int) int64 {
	maxL, minL := si, so
	if maxL < minL {
		maxL, minL = minL, maxL
	}
	return int64(1+maxL)*int64(p) + int64(minL)
}

// Fit designs a wrapper for module m at TAM width w. It tries every chain
// count c in 1..w and returns the design with the smallest test time
// (ties: fewest chains). Fit panics if w < 1; use (*Designer).Fit for
// memoized access.
func Fit(m *soc.Module, w int) Design {
	if w < 1 {
		panic(fmt.Sprintf("wrapper.Fit: width %d < 1", w))
	}
	if m.Patterns == 0 {
		return Design{Width: w, Chains: 0, Time: 0}
	}
	best := Design{Time: -1}
	// Beyond cMax additional chains cannot help: every scan chain is
	// alone and every cell is alone.
	cMax := len(m.ScanChains) + m.InputCells()
	if alt := len(m.ScanChains) + m.OutputCells(); alt > cMax {
		cMax = alt
	}
	if cMax < 1 {
		cMax = 1
	}
	if cMax > w {
		cMax = w
	}
	lengths := m.SortedChainLengths()
	for c := 1; c <= cMax; c++ {
		d := fitChains(m, lengths, c)
		if best.Time < 0 || d.Time < best.Time {
			d.Width = w
			best = d
		}
	}
	return best
}

// FitExact designs a wrapper with exactly min(w, MaxUsefulWidth) wrapper
// chains: plain LPT partitioning without COMBINE's search over chain
// counts. This is the pre-COMBINE baseline the ablation benchmarks compare
// against; Fit dominates it by construction.
func FitExact(m *soc.Module, w int) Design {
	if w < 1 {
		panic(fmt.Sprintf("wrapper.FitExact: width %d < 1", w))
	}
	if m.Patterns == 0 {
		return Design{Width: w, Chains: 0, Time: 0}
	}
	c := MaxUsefulWidth(m)
	if c > w {
		c = w
	}
	d := fitChains(m, m.SortedChainLengths(), c)
	d.Width = w
	return d
}

// fitChains builds a wrapper with exactly c chains: LPT partition of the
// internal scan chains followed by water-filling of input and output cells.
func fitChains(m *soc.Module, sortedLengths []int, c int) Design {
	scan := make([]int, c)
	// LPT: longest chain to currently shortest bin.
	for _, l := range sortedLengths {
		argmin := 0
		for i := 1; i < c; i++ {
			if scan[i] < scan[argmin] {
				argmin = i
			}
		}
		scan[argmin] += l
	}
	in := waterFill(scan, m.InputCells())
	out := waterFill(scan, m.OutputCells())
	d := Design{
		Chains:    c,
		ScanCells: scan,
		InCells:   in,
		OutCells:  out,
		ScanIn:    make([]int, c),
		ScanOut:   make([]int, c),
		Patterns:  m.Patterns,
	}
	for i := 0; i < c; i++ {
		d.ScanIn[i] = scan[i] + in[i]
		d.ScanOut[i] = scan[i] + out[i]
		if d.ScanIn[i] > d.MaxIn {
			d.MaxIn = d.ScanIn[i]
		}
		if d.ScanOut[i] > d.MaxOut {
			d.MaxOut = d.ScanOut[i]
		}
	}
	d.Time = TestTime(d.MaxIn, d.MaxOut, m.Patterns)
	return d
}

// waterFill distributes n unit cells over bins with the given base loads so
// that the maximum (base + cells) is minimized; it returns the per-bin cell
// counts. Greedy one-at-a-time to the lowest bin is optimal for unit items.
func waterFill(base []int, n int) []int {
	cells := make([]int, len(base))
	if n == 0 {
		return cells
	}
	// Level-fill: find the final water level by sorting the base loads.
	type binLoad struct{ idx, load int }
	bins := make([]binLoad, len(base))
	for i, b := range base {
		bins[i] = binLoad{i, b}
	}
	sort.Slice(bins, func(a, b int) bool { return bins[a].load < bins[b].load })
	remaining := n
	for remaining > 0 {
		// Fill the lowest bins up to the next level (or spend all).
		low := bins[0].load
		k := 1
		for k < len(bins) && bins[k].load == low {
			k++
		}
		var target int
		if k < len(bins) {
			target = bins[k].load
		} else {
			// All equal: distribute evenly.
			q, r := remaining/len(bins), remaining%len(bins)
			for i := range bins {
				add := q
				if i < r {
					add++
				}
				cells[bins[i].idx] += add
				bins[i].load += add
			}
			return cells
		}
		need := (target - low) * k
		if need > remaining {
			q, r := remaining/k, remaining%k
			for i := 0; i < k; i++ {
				add := q
				if i < r {
					add++
				}
				cells[bins[i].idx] += add
				bins[i].load += add
			}
			return cells
		}
		for i := 0; i < k; i++ {
			cells[bins[i].idx] += target - low
			bins[i].load = target
		}
		remaining -= need
	}
	return cells
}

// Validate checks a design against its module: all scan cells and wrapper
// cells are placed, and the reported maxima/time are consistent.
func (d *Design) Validate(m *soc.Module) error {
	if m.Patterns == 0 {
		if d.Time != 0 {
			return fmt.Errorf("zero-pattern module has nonzero time %d", d.Time)
		}
		return nil
	}
	if d.Chains < 1 || d.Chains > d.Width {
		return fmt.Errorf("chain count %d outside [1,%d]", d.Chains, d.Width)
	}
	sumScan, sumIn, sumOut := 0, 0, 0
	maxIn, maxOut := 0, 0
	for i := 0; i < d.Chains; i++ {
		sumScan += d.ScanCells[i]
		sumIn += d.InCells[i]
		sumOut += d.OutCells[i]
		if d.ScanIn[i] != d.ScanCells[i]+d.InCells[i] {
			return fmt.Errorf("chain %d: ScanIn %d != scan %d + in %d",
				i, d.ScanIn[i], d.ScanCells[i], d.InCells[i])
		}
		if d.ScanOut[i] != d.ScanCells[i]+d.OutCells[i] {
			return fmt.Errorf("chain %d: ScanOut %d != scan %d + out %d",
				i, d.ScanOut[i], d.ScanCells[i], d.OutCells[i])
		}
		if d.ScanIn[i] > maxIn {
			maxIn = d.ScanIn[i]
		}
		if d.ScanOut[i] > maxOut {
			maxOut = d.ScanOut[i]
		}
	}
	if sumScan != m.ScanCells() {
		return fmt.Errorf("scan cells placed %d != module scan cells %d", sumScan, m.ScanCells())
	}
	if sumIn != m.InputCells() {
		return fmt.Errorf("input cells placed %d != module input cells %d", sumIn, m.InputCells())
	}
	if sumOut != m.OutputCells() {
		return fmt.Errorf("output cells placed %d != module output cells %d", sumOut, m.OutputCells())
	}
	if maxIn != d.MaxIn || maxOut != d.MaxOut {
		return fmt.Errorf("maxima (%d,%d) inconsistent with chains (%d,%d)",
			d.MaxIn, d.MaxOut, maxIn, maxOut)
	}
	if want := TestTime(d.MaxIn, d.MaxOut, m.Patterns); d.Time != want {
		return fmt.Errorf("time %d != expected %d", d.Time, want)
	}
	return nil
}

// MaxUsefulWidth returns the smallest width beyond which T(w) cannot
// improve: each scan chain on its own wrapper chain and each wrapper cell
// alone.
func MaxUsefulWidth(m *soc.Module) int {
	w := len(m.ScanChains) + m.InputCells()
	if alt := len(m.ScanChains) + m.OutputCells(); alt > w {
		w = alt
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MinTime returns the smallest achievable test time for the module (at
// width MaxUsefulWidth).
func MinTime(m *soc.Module) int64 {
	if m.Patterns == 0 {
		return 0
	}
	return Fit(m, MaxUsefulWidth(m)).Time
}
