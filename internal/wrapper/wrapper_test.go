package wrapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multisite/internal/soc"
)

func TestTestTimeFormula(t *testing.T) {
	cases := []struct {
		si, so, p int
		want      int64
	}{
		{10, 5, 1, 11 + 5}, // (1+10)·1 + 5
		{5, 10, 1, 11 + 5}, // symmetric
		{0, 0, 7, 7},       // cell-less: capture only
		{100, 100, 10, 1010 + 100},
		{3, 8, 100, 900 + 3},
	}
	for _, c := range cases {
		if got := TestTime(c.si, c.so, c.p); got != c.want {
			t.Errorf("TestTime(%d,%d,%d) = %d, want %d", c.si, c.so, c.p, got, c.want)
		}
	}
}

func TestFitCombinational(t *testing.T) {
	// c6288-like: 32 in, 32 out, no scan, 12 patterns.
	m := &soc.Module{ID: 1, Inputs: 32, Outputs: 32, Patterns: 12}
	d := Fit(m, 8)
	if err := d.Validate(m); err != nil {
		t.Fatalf("invalid design: %v", err)
	}
	// 8 chains of 4 in / 4 out: T = (1+4)*12 + 4 = 64.
	if d.Time != 64 {
		t.Errorf("Time = %d, want 64", d.Time)
	}
}

func TestFitSingleChain(t *testing.T) {
	// One scan chain of 32, 35 in, 2 out, 75 patterns (s838-like) at w=1:
	// si = 32+35 = 67, so = 32+2 = 34, T = 68*75 + 34 = 5134.
	m := &soc.Module{ID: 3, Inputs: 35, Outputs: 2, Patterns: 75,
		ScanChains: soc.ChainsOfLengths(32)}
	d := Fit(m, 1)
	if err := d.Validate(m); err != nil {
		t.Fatalf("invalid design: %v", err)
	}
	if d.MaxIn != 67 || d.MaxOut != 34 {
		t.Errorf("MaxIn/MaxOut = %d/%d, want 67/34", d.MaxIn, d.MaxOut)
	}
	if d.Time != 68*75+34 {
		t.Errorf("Time = %d, want %d", d.Time, 68*75+34)
	}
}

func TestFitBidirsCountBothSides(t *testing.T) {
	m := &soc.Module{ID: 1, Inputs: 0, Outputs: 0, Bidirs: 6, Patterns: 10}
	d := Fit(m, 2)
	if err := d.Validate(m); err != nil {
		t.Fatalf("invalid design: %v", err)
	}
	// 6 bidirs need 6 input and 6 output cells over 2 chains: 3+3.
	if d.MaxIn != 3 || d.MaxOut != 3 {
		t.Errorf("MaxIn/MaxOut = %d/%d, want 3/3", d.MaxIn, d.MaxOut)
	}
}

func TestFitZeroPatterns(t *testing.T) {
	m := &soc.Module{ID: 0, Inputs: 100, Outputs: 100}
	d := Fit(m, 4)
	if d.Time != 0 {
		t.Errorf("zero-pattern Time = %d, want 0", d.Time)
	}
	if err := d.Validate(m); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFitWidthOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fit(w=0) did not panic")
		}
	}()
	Fit(&soc.Module{ID: 1, Inputs: 1, Patterns: 1}, 0)
}

func TestFitDominatesFitExact(t *testing.T) {
	m := &soc.Module{ID: 4, Inputs: 36, Outputs: 39, Patterns: 105,
		ScanChains: soc.ChainsOfLengths(54, 53, 52, 52)}
	for w := 1; w <= 12; w++ {
		combine := Fit(m, w).Time
		exact := FitExact(m, w).Time
		if combine > exact {
			t.Errorf("w=%d: COMBINE %d worse than exact %d", w, combine, exact)
		}
	}
}

func TestFitMonotoneInWidth(t *testing.T) {
	m := &soc.Module{ID: 5, Inputs: 38, Outputs: 304, Patterns: 110,
		ScanChains: soc.ChainsOfLengths(48, 48, 48, 47, 47, 46, 46, 45)}
	prev := Fit(m, 1).Time
	for w := 2; w <= 40; w++ {
		cur := Fit(m, w).Time
		if cur > prev {
			t.Errorf("T(%d)=%d > T(%d)=%d: not monotone", w, cur, w-1, prev)
		}
		prev = cur
	}
}

func TestWaterFillOptimal(t *testing.T) {
	cases := []struct {
		base    []int
		n       int
		wantMax int
	}{
		{[]int{0, 0, 0}, 9, 3},
		{[]int{5, 0, 0}, 4, 5},  // fill the two empty bins to 2,2 — max stays 5
		{[]int{5, 0, 0}, 10, 5}, // 0+5, 0+5 → level 5
		{[]int{5, 0, 0}, 12, 6}, // level rises above the tallest
		{[]int{3, 3, 3}, 1, 4},
		{[]int{7}, 3, 10},
	}
	for _, c := range cases {
		cells := waterFill(c.base, c.n)
		sum, max := 0, 0
		for i, add := range cells {
			sum += add
			if c.base[i]+add > max {
				max = c.base[i] + add
			}
		}
		if sum != c.n {
			t.Errorf("waterFill(%v,%d) placed %d cells", c.base, c.n, sum)
		}
		if max != c.wantMax {
			t.Errorf("waterFill(%v,%d) max = %d, want %d", c.base, c.n, max, c.wantMax)
		}
	}
}

func TestWaterFillZero(t *testing.T) {
	cells := waterFill([]int{1, 2}, 0)
	if cells[0] != 0 || cells[1] != 0 {
		t.Errorf("waterFill(...,0) = %v", cells)
	}
}

func TestMaxUsefulWidth(t *testing.T) {
	m := &soc.Module{ID: 1, Inputs: 5, Outputs: 9, Bidirs: 1,
		ScanChains: soc.ChainsOfLengths(10, 10), Patterns: 3}
	// 2 chains + max(5+1, 9+1) = 12.
	if got := MaxUsefulWidth(m); got != 12 {
		t.Errorf("MaxUsefulWidth = %d, want 12", got)
	}
	empty := &soc.Module{ID: 2, Patterns: 0}
	if got := MaxUsefulWidth(empty); got != 1 {
		t.Errorf("MaxUsefulWidth(empty) = %d, want 1", got)
	}
}

func TestMinTimeSaturates(t *testing.T) {
	m := &soc.Module{ID: 1, Inputs: 4, Outputs: 4, Patterns: 10,
		ScanChains: soc.ChainsOfLengths(30, 20)}
	min := MinTime(m)
	// Beyond MaxUsefulWidth the time cannot drop below min.
	if got := Fit(m, MaxUsefulWidth(m)+10).Time; got != min {
		t.Errorf("time beyond max useful width = %d, want %d", got, min)
	}
	// The longest chain bounds the best shift length.
	if lb := int64(1+30)*10 + 0; min < lb {
		t.Errorf("MinTime %d below structural bound %d", min, lb)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	m := &soc.Module{ID: 1, Inputs: 8, Outputs: 8, Patterns: 5,
		ScanChains: soc.ChainsOfLengths(6, 6)}
	d := Fit(m, 3)
	if err := d.Validate(m); err != nil {
		t.Fatalf("fresh design invalid: %v", err)
	}
	bad := d
	bad.Time++
	if err := bad.Validate(m); err == nil {
		t.Error("corrupted time accepted")
	}
	bad2 := d
	bad2.InCells = append([]int(nil), d.InCells...)
	bad2.InCells[0]++
	if err := bad2.Validate(m); err == nil {
		t.Error("corrupted cell placement accepted")
	}
}

// randomModule builds a random testable module.
func randomModule(rng *rand.Rand) *soc.Module {
	m := &soc.Module{
		ID:       1,
		Inputs:   rng.Intn(80),
		Outputs:  rng.Intn(80),
		Bidirs:   rng.Intn(10),
		Patterns: 1 + rng.Intn(150),
	}
	for c := rng.Intn(8); c > 0; c-- {
		m.ScanChains = append(m.ScanChains, soc.ScanChain{Length: 1 + rng.Intn(120)})
	}
	if m.ScanCells() == 0 && m.Terminals() == 0 {
		m.Inputs = 1
	}
	return m
}

func TestPropertyFitValid(t *testing.T) {
	f := func(seed int64, w8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModule(rng)
		w := 1 + int(w8)%24
		d := Fit(m, w)
		if err := d.Validate(m); err != nil {
			t.Logf("seed=%d w=%d: %v", seed, w, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFitMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModule(rng)
		prev := Fit(m, 1).Time
		for w := 2; w <= 16; w++ {
			cur := Fit(m, w).Time
			if cur > prev {
				t.Logf("seed=%d: T(%d)=%d > T(%d)=%d", seed, w, cur, w-1, prev)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVolumeConserved(t *testing.T) {
	// Every wrapper design moves exactly the module's test bits:
	// Σ chains (scan+in) and Σ (scan+out) match the module.
	f := func(seed int64, w8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModule(rng)
		w := 1 + int(w8)%16
		d := Fit(m, w)
		sumIn, sumOut := 0, 0
		for i := 0; i < d.Chains; i++ {
			sumIn += d.ScanIn[i]
			sumOut += d.ScanOut[i]
		}
		return sumIn == m.ScanCells()+m.InputCells() &&
			sumOut == m.ScanCells()+m.OutputCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
