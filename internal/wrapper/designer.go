package wrapper

import (
	"sync"

	"multisite/internal/soc"
)

// MaxTableWidth caps the per-module design table. No realistic ATE in the
// paper's evaluation offers more than 1024 channels (512 TAM wires), so
// designs are never queried beyond this width; times saturate at the cap.
const MaxTableWidth = 512

// Designer memoizes wrapper designs per module. Architecture optimization
// (Step 1 fitting, Step 2 widening, baseline packing) queries module test
// times at many widths; the Designer computes the per-chain-count design
// table once per module and answers every width query from the prefix
// minimum of that table.
//
// A Designer is safe for concurrent use: queries on an already-built
// module table are lock-free, so parallel architecture optimizations of
// the same SOC (the sweep engine's common case) do not contend.
type Designer struct {
	soc *soc.SOC
	// mu serializes table builds only; lookups go through the sync.Map.
	mu sync.Mutex
	// tables maps a module index to its immutable *moduleTable, built
	// lazily on first query.
	tables sync.Map
}

// moduleTable is the per-module design table; immutable once published.
type moduleTable struct {
	// designs[c-1] is the design of the module with exactly c wrapper
	// chains, for c in 1..min(MaxUsefulWidth, MaxTableWidth).
	designs []Design
	// prefixBest[c-1] is the index (chain count - 1) of the best design
	// among chain counts 1..c.
	prefixBest []int
}

// NewDesigner returns a Designer for the given SOC.
func NewDesigner(s *soc.SOC) *Designer {
	return &Designer{soc: s}
}

// designers caches one Designer per SOC value so that repeated
// architecture designs for the same chip (parameter sweeps, benchmarks)
// reuse the wrapper-fit tables.
var designers sync.Map // *soc.SOC -> *Designer

// For returns the cached Designer for the SOC, creating it on first use.
// The SOC must not be mutated after the first call.
func For(s *soc.SOC) *Designer {
	if d, ok := designers.Load(s); ok {
		return d.(*Designer)
	}
	d, _ := designers.LoadOrStore(s, NewDesigner(s))
	return d.(*Designer)
}

// SOC returns the SOC this designer was built for.
func (d *Designer) SOC() *soc.SOC { return d.soc }

func (d *Designer) table(mi int) ([]Design, []int) {
	if v, ok := d.tables.Load(mi); ok {
		t := v.(*moduleTable)
		return t.designs, t.prefixBest
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.tables.Load(mi); ok {
		t := v.(*moduleTable)
		return t.designs, t.prefixBest
	}
	m := &d.soc.Modules[mi]
	cMax := MaxUsefulWidth(m)
	if cMax > MaxTableWidth {
		cMax = MaxTableWidth
	}
	t := make([]Design, cMax)
	pb := make([]int, cMax)
	lengths := m.SortedChainLengths()
	for c := 1; c <= cMax; c++ {
		if m.Patterns == 0 {
			t[c-1] = Design{Width: c, Chains: 0, Time: 0}
		} else {
			t[c-1] = fitChains(m, lengths, c)
			t[c-1].Width = c
		}
		if c == 1 || t[c-1].Time < t[pb[c-2]].Time {
			pb[c-1] = c - 1
		} else {
			pb[c-1] = pb[c-2]
		}
	}
	d.tables.Store(mi, &moduleTable{designs: t, prefixBest: pb})
	return t, pb
}

// Fit returns the best design for module index mi at TAM width w.
// The returned design is shared; callers must not mutate its slices.
func (d *Designer) Fit(mi, w int) Design {
	if w < 1 {
		panic("wrapper.Designer.Fit: width < 1")
	}
	t, pb := d.table(mi)
	c := w
	if c > len(t) {
		c = len(t)
	}
	best := t[pb[c-1]]
	best.Width = w
	return best
}

// Time returns the test time in cycles of module mi at width w.
func (d *Designer) Time(mi, w int) int64 {
	return d.Fit(mi, w).Time
}

// MinWidth returns the smallest width w ≤ maxW such that module mi tests
// within depth cycles, and whether such a width exists. Because Fit's time
// is non-increasing in w, binary search applies.
func (d *Designer) MinWidth(mi int, depth int64, maxW int) (int, bool) {
	t, pb := d.table(mi)
	top := len(t)
	if top > maxW {
		top = maxW
	}
	if top < 1 {
		return 0, false
	}
	if t[pb[top-1]].Time > depth {
		return 0, false
	}
	lo, hi := 1, top
	for lo < hi {
		mid := (lo + hi) / 2
		if t[pb[mid-1]].Time <= depth {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// MinTime returns the smallest achievable test time of module mi.
func (d *Designer) MinTime(mi int) int64 {
	t, pb := d.table(mi)
	return t[pb[len(t)-1]].Time
}

// MaxWidthTable exposes the number of distinct useful chain counts of
// module mi (i.e. MaxUsefulWidth of the module).
func (d *Designer) MaxWidthTable(mi int) int {
	t, _ := d.table(mi)
	return len(t)
}
