package wrapper

import (
	"sync"

	"multisite/internal/soc"
)

// MaxTableWidth caps the per-module design table. No realistic ATE in the
// paper's evaluation offers more than 1024 channels (512 TAM wires), so
// designs are never queried beyond this width; times saturate at the cap.
const MaxTableWidth = 512

// Designer memoizes wrapper designs per module. Architecture optimization
// (Step 1 fitting, Step 2 widening, baseline packing) queries module test
// times at many widths; the Designer computes the per-chain-count design
// table once per module and answers every width query from the prefix
// minimum of that table.
//
// A Designer is safe for concurrent use: queries on an already-built
// module table are lock-free, so parallel architecture optimizations of
// the same SOC (the sweep engine's common case) do not contend.
type Designer struct {
	soc *soc.SOC
	// mu serializes table builds only; lookups go through the sync.Map.
	mu sync.Mutex
	// tables maps a module index to its immutable *moduleTable, built
	// lazily on first query.
	tables sync.Map
}

// moduleTable is the per-module design table; immutable once published.
type moduleTable struct {
	// designs[c-1] is the design of the module with exactly c wrapper
	// chains, for c in 1..min(MaxUsefulWidth, MaxTableWidth).
	designs []Design
	// prefixBest[c-1] is the index (chain count - 1) of the best design
	// among chain counts 1..c.
	prefixBest []int
	// times[w-1] is the best test time at TAM width w: the prefix minimum
	// of the per-chain-count design times. Architecture optimization's
	// inner loops index this flat table instead of copying Design structs.
	times []int64
}

// NewDesigner returns a Designer for the given SOC.
func NewDesigner(s *soc.SOC) *Designer {
	return &Designer{soc: s}
}

// designers caches one Designer per SOC value so that repeated
// architecture designs for the same chip (parameter sweeps, benchmarks)
// reuse the wrapper-fit tables.
var designers sync.Map // *soc.SOC -> *Designer

// For returns the cached Designer for the SOC, creating it on first use.
// The SOC must not be mutated after the first call.
func For(s *soc.SOC) *Designer {
	if d, ok := designers.Load(s); ok {
		return d.(*Designer)
	}
	d, _ := designers.LoadOrStore(s, NewDesigner(s))
	return d.(*Designer)
}

// SOC returns the SOC this designer was built for.
func (d *Designer) SOC() *soc.SOC { return d.soc }

func (d *Designer) table(mi int) *moduleTable {
	if v, ok := d.tables.Load(mi); ok {
		return v.(*moduleTable)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.tables.Load(mi); ok {
		return v.(*moduleTable)
	}
	m := &d.soc.Modules[mi]
	cMax := MaxUsefulWidth(m)
	if cMax > MaxTableWidth {
		cMax = MaxTableWidth
	}
	t := make([]Design, cMax)
	pb := make([]int, cMax)
	times := make([]int64, cMax)
	lengths := m.SortedChainLengths()
	for c := 1; c <= cMax; c++ {
		if m.Patterns == 0 {
			t[c-1] = Design{Width: c, Chains: 0, Time: 0}
		} else {
			t[c-1] = fitChains(m, lengths, c)
			t[c-1].Width = c
		}
		if c == 1 || t[c-1].Time < t[pb[c-2]].Time {
			pb[c-1] = c - 1
		} else {
			pb[c-1] = pb[c-2]
		}
		times[c-1] = t[pb[c-1]].Time
	}
	tab := &moduleTable{designs: t, prefixBest: pb, times: times}
	d.tables.Store(mi, tab)
	return tab
}

// Fit returns the best design for module index mi at TAM width w.
// The returned design is shared; callers must not mutate its slices.
func (d *Designer) Fit(mi, w int) Design {
	if w < 1 {
		panic("wrapper.Designer.Fit: width < 1")
	}
	t := d.table(mi)
	c := w
	if c > len(t.designs) {
		c = len(t.designs)
	}
	best := t.designs[t.prefixBest[c-1]]
	best.Width = w
	return best
}

// TimeTable returns the dense best-time table of module mi: entry w-1 is
// the minimum test time in cycles at TAM width w, for w in
// 1..MaxWidthTable(mi); beyond the table the time saturates at the last
// entry. The slice is shared and must not be mutated. The table is
// non-increasing, so callers may binary-search it. Architecture
// optimization's inner loops index it directly instead of paying a map
// load plus a Design struct copy per Time query.
func (d *Designer) TimeTable(mi int) []int64 {
	return d.table(mi).times
}

// Time returns the test time in cycles of module mi at width w.
func (d *Designer) Time(mi, w int) int64 {
	if w < 1 {
		panic("wrapper.Designer.Time: width < 1")
	}
	tt := d.table(mi).times
	if w > len(tt) {
		w = len(tt)
	}
	return tt[w-1]
}

// MinWidth returns the smallest width w ≤ maxW such that module mi tests
// within depth cycles, and whether such a width exists. Because Fit's time
// is non-increasing in w, binary search applies.
func (d *Designer) MinWidth(mi int, depth int64, maxW int) (int, bool) {
	tt := d.table(mi).times
	top := len(tt)
	if top > maxW {
		top = maxW
	}
	if top < 1 {
		return 0, false
	}
	if tt[top-1] > depth {
		return 0, false
	}
	lo, hi := 1, top
	for lo < hi {
		mid := (lo + hi) / 2
		if tt[mid-1] <= depth {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// MinTime returns the smallest achievable test time of module mi.
func (d *Designer) MinTime(mi int) int64 {
	tt := d.table(mi).times
	return tt[len(tt)-1]
}

// MaxWidthTable exposes the number of distinct useful chain counts of
// module mi (i.e. MaxUsefulWidth of the module).
func (d *Designer) MaxWidthTable(mi int) int {
	return len(d.table(mi).times)
}
