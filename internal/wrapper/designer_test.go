package wrapper

import (
	"math/rand"
	"sync"
	"testing"

	"multisite/internal/soc"
)

func designerSOC() *soc.SOC {
	return &soc.SOC{Name: "dsn", Modules: []soc.Module{
		{ID: 0, Inputs: 4},
		{ID: 1, Inputs: 32, Outputs: 32, Patterns: 12},
		{ID: 2, Inputs: 35, Outputs: 2, Patterns: 75, ScanChains: soc.ChainsOfLengths(32)},
		{ID: 3, Inputs: 36, Outputs: 39, Patterns: 105, ScanChains: soc.ChainsOfLengths(54, 53, 52, 52)},
	}}
}

func TestDesignerMatchesFit(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	for mi := range s.Modules {
		for w := 1; w <= 20; w++ {
			want := Fit(&s.Modules[mi], w).Time
			if got := d.Time(mi, w); got != want {
				t.Errorf("module %d width %d: designer %d, Fit %d", mi, w, got, want)
			}
		}
	}
}

func TestDesignerMinWidth(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	for _, mi := range s.TestableModules() {
		for _, depth := range []int64{100, 1000, 5000, 100000} {
			w, ok := d.MinWidth(mi, depth, 64)
			// Reference: linear scan.
			wantW, wantOK := 0, false
			for x := 1; x <= 64; x++ {
				if d.Time(mi, x) <= depth {
					wantW, wantOK = x, true
					break
				}
			}
			if ok != wantOK || w != wantW {
				t.Errorf("module %d depth %d: MinWidth = (%d,%v), want (%d,%v)",
					mi, depth, w, ok, wantW, wantOK)
			}
		}
	}
}

func TestDesignerMinWidthInfeasible(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	if _, ok := d.MinWidth(3, 1, 64); ok {
		t.Error("depth 1 should be infeasible for a scanned module")
	}
	if _, ok := d.MinWidth(3, 1<<40, 0); ok {
		t.Error("maxW=0 should be infeasible")
	}
}

func TestDesignerMinTime(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	for _, mi := range s.TestableModules() {
		if got, want := d.MinTime(mi), MinTime(&s.Modules[mi]); got != want {
			t.Errorf("module %d: MinTime designer %d, direct %d", mi, got, want)
		}
	}
}

func TestDesignerFitSharesMemoizedDesigns(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	d1 := d.Fit(3, 8)
	d2 := d.Fit(3, 8)
	if d1.Time != d2.Time || d1.Chains != d2.Chains {
		t.Errorf("repeated Fit differs: %+v vs %+v", d1, d2)
	}
	if err := d1.Validate(&s.Modules[3]); err != nil {
		t.Errorf("memoized design invalid: %v", err)
	}
}

func TestDesignerWidthCap(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	// Requests beyond the table cap must still answer (times saturate).
	if got := d.Time(1, MaxTableWidth+100); got <= 0 {
		t.Errorf("time at huge width = %d", got)
	}
}

func TestDesignerConcurrent(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				mi := 1 + rng.Intn(3)
				w := 1 + rng.Intn(16)
				want := Fit(&s.Modules[mi], w).Time
				if got := d.Time(mi, w); got != want {
					errs <- "mismatch under concurrency"
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestForCachesPerSOC(t *testing.T) {
	s := designerSOC()
	if For(s) != For(s) {
		t.Error("For returned different designers for the same SOC")
	}
	other := designerSOC()
	if For(s) == For(other) {
		t.Error("For shared a designer across distinct SOC values")
	}
}

func TestDesignerTimeTableMatchesFit(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	for mi := range s.Modules {
		tt := d.TimeTable(mi)
		if len(tt) != d.MaxWidthTable(mi) {
			t.Errorf("module %d: table length %d != MaxWidthTable %d", mi, len(tt), d.MaxWidthTable(mi))
		}
		for w := 1; w <= len(tt); w++ {
			if want := Fit(&s.Modules[mi], w).Time; tt[w-1] != want {
				t.Errorf("module %d width %d: table %d, Fit %d", mi, w, tt[w-1], want)
			}
		}
	}
}

func TestDesignerTimeTableNonIncreasing(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	for mi := range s.Modules {
		tt := d.TimeTable(mi)
		for w := 1; w < len(tt); w++ {
			if tt[w] > tt[w-1] {
				t.Errorf("module %d: time increases from width %d (%d) to %d (%d)",
					mi, w, tt[w-1], w+1, tt[w])
			}
		}
	}
}

func TestDesignerTimeSaturatesBeyondTable(t *testing.T) {
	s := designerSOC()
	d := NewDesigner(s)
	for mi := range s.Modules {
		tt := d.TimeTable(mi)
		if got, want := d.Time(mi, len(tt)+37), tt[len(tt)-1]; got != want {
			t.Errorf("module %d: time beyond table = %d, want saturated %d", mi, got, want)
		}
	}
}
