// Package wafersim is a Monte-Carlo simulator of the multi-site wafer test
// floor. It draws per-touchdown contact and manufacturing outcomes,
// applies the abort-on-fail and re-test policies, and measures the
// empirical throughput — the quantity the analytic model of
// internal/multisite predicts in closed form. The integration tests use it
// to validate Equations 4.1–4.6 of the reproduced paper end to end.
package wafersim

import (
	"fmt"
	"math/rand"

	"multisite/internal/multisite"
)

// Config parameterizes one simulated production run.
type Config struct {
	// Params are the analytic model inputs being validated.
	Params multisite.Params
	// Touchdowns is the number of probe touchdowns to simulate.
	Touchdowns int
	// Seed makes the run deterministic.
	Seed int64
}

// Stats is the empirical outcome of a simulated run.
type Stats struct {
	// Touchdowns simulated.
	Touchdowns int
	// Devices contacted (Touchdowns × sites).
	Devices int
	// ContactFails counts devices that failed the contact test.
	ContactFails int
	// ManufFails counts devices that failed the manufacturing test
	// (among those that passed contact).
	ManufFails int
	// Retests counts re-test slots consumed by contact failures.
	Retests int
	// TotalHours is the simulated wall-clock time.
	TotalHours float64
	// Throughput is the empirical devices/hour.
	Throughput float64
	// UniqueThroughput is the empirical unique devices/hour: devices
	// minus the re-test slots, per hour.
	UniqueThroughput float64
	// MeanTestTime is the average per-touchdown manufacturing test
	// time actually spent, in seconds.
	MeanTestTime float64
}

// Run simulates the production run.
func Run(cfg Config) (*Stats, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Touchdowns < 1 {
		return nil, fmt.Errorf("wafersim: need at least one touchdown")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pcDevice := multisite.DeviceContactYield(p.ContactYield, p.Pins)

	st := &Stats{Touchdowns: cfg.Touchdowns}
	var totalSec, testSec float64
	// Contact-failing devices re-enter the stream once (the paper's
	// "re-tested at most once" premise), consuming future test slots.
	// pendingRetests is that queue; fresh devices fill the remaining
	// slots, so unique throughput emerges from the slot accounting
	// rather than being assumed.
	pendingRetests := 0
	uniqueDevices := 0
	for td := 0; td < cfg.Touchdowns; td++ {
		totalSec += p.IndexTime + p.ContactTime
		contactPassCount := 0
		for s := 0; s < p.Sites; s++ {
			st.Devices++
			isRetest := false
			if pendingRetests > 0 {
				pendingRetests--
				isRetest = true
				st.Retests++
			} else {
				uniqueDevices++
			}
			if rng.Float64() < pcDevice {
				contactPassCount++
			} else {
				st.ContactFails++
				if p.Retest && !isRetest {
					pendingRetests++
				}
			}
		}
		if contactPassCount == 0 {
			// No site contacted: manufacturing test skipped.
			continue
		}
		// Manufacturing outcomes for the contacted sites.
		anyPass := false
		for s := 0; s < contactPassCount; s++ {
			if rng.Float64() < p.Yield {
				anyPass = true
			} else {
				st.ManufFails++
			}
		}
		t := p.TestTime
		if p.AbortOnFail && !anyPass {
			// All contacted sites fail; under the paper's
			// zero-time lower-bound assumption the test costs
			// nothing.
			t = 0
		}
		totalSec += t
		testSec += t
	}
	st.TotalHours = totalSec / 3600
	st.Throughput = float64(st.Devices) / st.TotalHours
	st.UniqueThroughput = float64(uniqueDevices) / st.TotalHours
	st.MeanTestTime = testSec / float64(cfg.Touchdowns)
	return st, nil
}

// Compare runs the simulation and returns the relative error of the
// empirical throughput against the analytic model (positive means the
// simulation measured more).
func Compare(cfg Config) (simulated, analytic, relErr float64, err error) {
	st, err := Run(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	analytic = cfg.Params.Throughput()
	simulated = st.Throughput
	relErr = (simulated - analytic) / analytic
	return simulated, analytic, relErr, nil
}
