package wafersim

import (
	"math"
	"testing"

	"multisite/internal/multisite"
)

func params() multisite.Params {
	return multisite.Params{
		Sites: 8, Pins: 70,
		IndexTime: 0.65, ContactTime: 0.1, TestTime: 1.468,
		ContactYield: 1, Yield: 1,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Params: params(), Touchdowns: 0}); err == nil {
		t.Error("zero touchdowns accepted")
	}
	p := params()
	p.Sites = 0
	if _, err := Run(Config{Params: p, Touchdowns: 10}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := Config{Params: params(), Touchdowns: 500, Seed: 7}
	cfg.Params.ContactYield = 0.999
	cfg.Params.Yield = 0.8
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("same seed produced different stats")
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a == *c {
		t.Error("different seeds produced identical stats")
	}
}

func TestPerfectYieldMatchesAnalyticExactly(t *testing.T) {
	// With pc = pm = 1 there is no randomness: the empirical throughput
	// equals Eq. 4.5 to floating-point accuracy.
	cfg := Config{Params: params(), Touchdowns: 100, Seed: 1}
	sim, analytic, relErr, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(relErr) > 1e-12 {
		t.Errorf("deterministic case: sim %g vs analytic %g (rel %g)", sim, analytic, relErr)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	// Random contact and manufacturing failures: the empirical
	// throughput converges to the model within ~1%.
	cfg := Config{Params: params(), Touchdowns: 30000, Seed: 42}
	cfg.Params.ContactYield = 0.999
	cfg.Params.Yield = 0.85
	_, _, relErr, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(relErr) > 0.01 {
		t.Errorf("relative error %g exceeds 1%%", relErr)
	}
}

func TestMonteCarloAbortOnFail(t *testing.T) {
	// Abort-on-fail with low yield at n = 1 saves real time; the
	// empirical throughput must match the Eq. 4.4-based model.
	p := params()
	p.Sites = 1
	p.Yield = 0.6
	p.AbortOnFail = true
	cfg := Config{Params: p, Touchdowns: 40000, Seed: 11}
	_, _, relErr, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(relErr) > 0.01 {
		t.Errorf("abort-on-fail relative error %g exceeds 1%%", relErr)
	}
}

func TestAbortOnFailSavesTimeAtLowYield(t *testing.T) {
	p := params()
	p.Sites = 1
	p.Yield = 0.5
	base := Config{Params: p, Touchdowns: 20000, Seed: 3}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	p.AbortOnFail = true
	abort, err := Run(Config{Params: p, Touchdowns: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if abort.Throughput <= full.Throughput {
		t.Errorf("abort-on-fail throughput %g not above full %g",
			abort.Throughput, full.Throughput)
	}
}

func TestAbortOnFailWashesOutAtManySites(t *testing.T) {
	// The paper's multi-site claim: at n = 8 the abort saving is gone.
	p := params()
	p.Sites = 8
	p.Yield = 0.7
	full, err := Run(Config{Params: p, Touchdowns: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p.AbortOnFail = true
	abort, err := Run(Config{Params: p, Touchdowns: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rel := (abort.Throughput - full.Throughput) / full.Throughput
	if rel > 0.01 {
		t.Errorf("abort-on-fail still gains %.2f%% at n=8", 100*rel)
	}
}

func TestRetestQueueAccounting(t *testing.T) {
	p := params()
	p.ContactYield = 0.995 // painful with 70 pins: ~30% device contact failures
	p.Retest = true
	st, err := Run(Config{Params: p, Touchdowns: 30000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retests == 0 {
		t.Fatal("no re-tests recorded despite low contact yield")
	}
	if st.UniqueThroughput >= st.Throughput {
		t.Error("unique throughput not below raw throughput under re-test")
	}
	// Eq. 4.6: Du = Dth / (1 + (1 − pc^x)), within MC tolerance.
	want := p.UniqueThroughput()
	rel := (st.UniqueThroughput - want) / want
	if math.Abs(rel) > 0.02 {
		t.Errorf("unique throughput %g vs model %g (rel %g)", st.UniqueThroughput, want, rel)
	}
}

func TestNoRetestUniqueEqualsRaw(t *testing.T) {
	p := params()
	p.ContactYield = 0.995
	p.Retest = false
	st, err := Run(Config{Params: p, Touchdowns: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.UniqueThroughput != st.Throughput {
		t.Error("without re-test, unique must equal raw")
	}
	if st.Retests != 0 {
		t.Errorf("re-tests recorded without policy: %d", st.Retests)
	}
}

func TestStatsConsistency(t *testing.T) {
	p := params()
	p.ContactYield = 0.999
	p.Yield = 0.9
	st, err := Run(Config{Params: p, Touchdowns: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Devices != st.Touchdowns*p.Sites {
		t.Errorf("devices = %d, want %d", st.Devices, st.Touchdowns*p.Sites)
	}
	if st.ContactFails > st.Devices || st.ManufFails > st.Devices {
		t.Error("failure counts exceed device count")
	}
	if st.TotalHours <= 0 || st.MeanTestTime < 0 {
		t.Errorf("timing stats: hours %g, mean test %g", st.TotalHours, st.MeanTestTime)
	}
}
