// Package finaltest models the second stage of the paper's Section 3 test
// flow: final ("packaged IC") test. At final test all pins of the package
// are contacted, so the multi-site count is limited by the ATE channel
// count divided by the full pin count — and additionally by the device
// handler's parallelism — rather than by the narrow E-RPCT interface that
// makes wafer test so parallel. Optionally the internal circuitry is
// re-tested, through all pins or through the E-RPCT subset.
//
// The package reuses the wafer-test throughput machinery with the
// final-test constraints, so a complete flow (wafer sort + final test) can
// be costed end to end.
package finaltest

import (
	"fmt"

	"multisite/internal/ate"
	"multisite/internal/multisite"
)

// Config describes the final-test stage.
type Config struct {
	// ATE is the tester used at final test.
	ATE ate.ATE
	// PackagePins is the full pin count of the packaged SOC; all are
	// contacted.
	PackagePins int
	// HandlerSites is the device handler's parallelism limit (pick-and-
	// place capacity); 0 means unlimited.
	HandlerSites int
	// IndexTime is the handler index time in seconds (typically longer
	// than a wafer prober's).
	IndexTime float64
	// ContactTime is the continuity/contact test time in seconds.
	ContactTime float64
	// IOTestTime is the parametric/functional IO test in seconds; it
	// is the mandatory part of final test.
	IOTestTime float64
	// RetestInternal re-applies the internal scan test at final test.
	RetestInternal bool
	// InternalViaRPCT applies the optional internal re-test through the
	// E-RPCT subset (k channels) instead of all pins; irrelevant unless
	// RetestInternal.
	InternalViaRPCT bool
	// InternalTestTime is the internal scan test time in seconds (from
	// the wafer-test architecture).
	InternalTestTime float64
	// ContactYield and Yield parallel the wafer model; final-test
	// contact yield is near-perfect (sockets, not probes).
	ContactYield, Yield float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.ATE.Validate(); err != nil {
		return err
	}
	if c.PackagePins < 1 {
		return fmt.Errorf("finaltest: need at least one package pin")
	}
	if c.HandlerSites < 0 {
		return fmt.Errorf("finaltest: negative handler sites")
	}
	if c.IndexTime < 0 || c.ContactTime < 0 || c.IOTestTime < 0 || c.InternalTestTime < 0 {
		return fmt.Errorf("finaltest: negative timing")
	}
	return nil
}

// MaxSites returns the final-test multi-site count: ATE channels divided
// by the full pin count, capped by the handler.
func (c Config) MaxSites() int {
	n := c.ATE.Channels / c.PackagePins
	if c.HandlerSites > 0 && n > c.HandlerSites {
		n = c.HandlerSites
	}
	return n
}

// TestTime returns the per-device test time in seconds: the IO test plus
// any internal re-test.
func (c Config) TestTime() float64 {
	t := c.IOTestTime
	if c.RetestInternal {
		t += c.InternalTestTime
	}
	return t
}

// Params assembles the throughput model inputs for n sites (n ≤ MaxSites).
func (c Config) Params(n int) multisite.Params {
	pc, pm := c.ContactYield, c.Yield
	if pc == 0 {
		pc = 1
	}
	if pm == 0 {
		pm = 1
	}
	return multisite.Params{
		Sites:        n,
		Pins:         c.PackagePins,
		IndexTime:    c.IndexTime,
		ContactTime:  c.ContactTime,
		TestTime:     c.TestTime(),
		ContactYield: pc,
		Yield:        pm,
	}
}

// Throughput returns devices per hour at the maximum site count, or 0 if
// the tester cannot host a single packaged device.
func (c Config) Throughput() float64 {
	n := c.MaxSites()
	if n < 1 {
		return 0
	}
	return c.Params(n).Throughput()
}

// FlowStage summarizes one stage of the two-stage flow.
type FlowStage struct {
	// Name labels the stage ("wafer" or "final").
	Name string
	// Sites is the stage's multi-site count.
	Sites int
	// Throughput is the stage's devices per hour.
	Throughput float64
}

// Flow combines wafer sort and final test: the end-to-end capacity is
// bottlenecked by the slower stage (each device passes both).
type Flow struct {
	// Wafer and Final are the two stages.
	Wafer, Final FlowStage
}

// Bottleneck returns the limiting stage.
func (f Flow) Bottleneck() FlowStage {
	if f.Wafer.Throughput <= f.Final.Throughput {
		return f.Wafer
	}
	return f.Final
}

// DevicesPerHour returns the end-to-end flow capacity with one tester per
// stage.
func (f Flow) DevicesPerHour() float64 {
	return f.Bottleneck().Throughput
}

// TestersForBalance returns how many final-test cells are needed per wafer
// cell to keep final test from bottlenecking (rounded up), illustrating
// why the narrow-interface wafer stage is so valuable.
func (f Flow) TestersForBalance() int {
	if f.Final.Throughput <= 0 {
		return 0
	}
	n := int(f.Wafer.Throughput / f.Final.Throughput)
	if float64(n)*f.Final.Throughput < f.Wafer.Throughput {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
