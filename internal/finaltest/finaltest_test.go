package finaltest

import (
	"math"
	"testing"

	"multisite/internal/ate"
)

func config() Config {
	return Config{
		ATE:              ate.ATE{Channels: 512, Depth: 7 << 20, ClockHz: 5e6},
		PackagePins:      280,
		HandlerSites:     4,
		IndexTime:        1.2,
		ContactTime:      0.05,
		IOTestTime:       0.4,
		InternalTestTime: 1.468,
	}
}

func TestValidate(t *testing.T) {
	if err := config().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.PackagePins = 0 },
		func(c *Config) { c.HandlerSites = -1 },
		func(c *Config) { c.IndexTime = -1 },
		func(c *Config) { c.ATE.Channels = 0 },
	}
	for i, mutate := range bad {
		c := config()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMaxSitesChannelLimited(t *testing.T) {
	c := config()
	c.HandlerSites = 0
	// 512 channels / 280 pins = 1 site: full-pin contact kills
	// parallelism — the paper's reason to test through E-RPCT at wafer.
	if got := c.MaxSites(); got != 1 {
		t.Errorf("MaxSites = %d, want 1", got)
	}
	c.PackagePins = 64
	if got := c.MaxSites(); got != 8 {
		t.Errorf("MaxSites = %d, want 8", got)
	}
}

func TestMaxSitesHandlerLimited(t *testing.T) {
	c := config()
	c.PackagePins = 32 // channels would allow 16
	if got := c.MaxSites(); got != 4 {
		t.Errorf("MaxSites = %d, want handler cap 4", got)
	}
}

func TestTestTimeComposition(t *testing.T) {
	c := config()
	if got := c.TestTime(); got != 0.4 {
		t.Errorf("IO-only test time = %g", got)
	}
	c.RetestInternal = true
	if got := c.TestTime(); math.Abs(got-1.868) > 1e-12 {
		t.Errorf("with internal re-test = %g, want 1.868", got)
	}
}

func TestThroughput(t *testing.T) {
	c := config()
	d := c.Throughput()
	n := c.MaxSites()
	want := 3600 * float64(n) / (c.IndexTime + c.ContactTime + c.IOTestTime)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("throughput = %g, want %g", d, want)
	}
	// Unhostable device.
	c.PackagePins = 10000
	c.HandlerSites = 0
	if got := c.Throughput(); got != 0 {
		t.Errorf("oversized package throughput = %g", got)
	}
}

func TestInternalRetestCostsThroughput(t *testing.T) {
	c := config()
	base := c.Throughput()
	c.RetestInternal = true
	if c.Throughput() >= base {
		t.Error("internal re-test should cost throughput")
	}
}

func TestParamsDefaultsYields(t *testing.T) {
	c := config()
	p := c.Params(2)
	if p.ContactYield != 1 || p.Yield != 1 {
		t.Errorf("yields default %g/%g, want 1/1", p.ContactYield, p.Yield)
	}
	if p.Pins != c.PackagePins || p.Sites != 2 {
		t.Errorf("params = %+v", p)
	}
}

func TestFlowBottleneck(t *testing.T) {
	f := Flow{
		Wafer: FlowStage{Name: "wafer", Sites: 8, Throughput: 13000},
		Final: FlowStage{Name: "final", Sites: 1, Throughput: 2100},
	}
	if f.Bottleneck().Name != "final" {
		t.Error("final test should bottleneck")
	}
	if f.DevicesPerHour() != 2100 {
		t.Errorf("flow capacity = %g", f.DevicesPerHour())
	}
	// 13000/2100 = 6.19 → 7 final-test cells per wafer cell.
	if got := f.TestersForBalance(); got != 7 {
		t.Errorf("TestersForBalance = %d, want 7", got)
	}
}

func TestTestersForBalanceEdge(t *testing.T) {
	f := Flow{
		Wafer: FlowStage{Throughput: 1000},
		Final: FlowStage{Throughput: 1000},
	}
	if got := f.TestersForBalance(); got != 1 {
		t.Errorf("balanced flow needs %d, want 1", got)
	}
	f.Final.Throughput = 0
	if got := f.TestersForBalance(); got != 0 {
		t.Errorf("dead final stage: %d, want 0", got)
	}
}

func TestWaferAdvantage(t *testing.T) {
	// The flow asymmetry the paper's Section 3 describes: the E-RPCT
	// wafer stage out-parallelizes the all-pins final stage on the same
	// tester.
	c := config()
	c.HandlerSites = 0
	finalSites := c.MaxSites()
	waferSites := c.ATE.MaxSites(64) // k=64 E-RPCT channels at wafer
	if waferSites <= finalSites {
		t.Errorf("wafer sites %d not above final sites %d", waferSites, finalSites)
	}
}
