// Package wafer models the geometry the paper's throughput model
// abstracts away: a circular wafer of rectangular dies probed by a
// multi-site probe card stepping across the wafer. The paper notes that
// "the circular shape of the wafer brings some losses in multi-site
// testing at the periphery" and ignores them; this package quantifies
// those losses, which the experiment harness reports as an extension
// (ablation abl-3 in DESIGN.md).
package wafer

import (
	"fmt"
	"math"
)

// Layout describes the wafer and the probe-card site arrangement.
type Layout struct {
	// WaferDiameterMM is the usable wafer diameter (e.g. 300).
	WaferDiameterMM float64
	// DieWidthMM and DieHeightMM are the die dimensions including
	// scribe lanes.
	DieWidthMM, DieHeightMM float64
	// SitesX and SitesY arrange the probe sites in a rectangle; the
	// site count n = SitesX · SitesY.
	SitesX, SitesY int
}

// Validate checks the layout.
func (l Layout) Validate() error {
	if l.WaferDiameterMM <= 0 || l.DieWidthMM <= 0 || l.DieHeightMM <= 0 {
		return fmt.Errorf("wafer: non-positive dimension")
	}
	if l.SitesX < 1 || l.SitesY < 1 {
		return fmt.Errorf("wafer: need at least a 1x1 site grid")
	}
	return nil
}

// Sites returns the probe-card site count n.
func (l Layout) Sites() int { return l.SitesX * l.SitesY }

// dieOnWafer reports whether the die at grid position (i, j) lies fully
// inside the wafer circle. The grid is centered on the wafer.
func (l Layout) dieOnWafer(i, j int) bool {
	r := l.WaferDiameterMM / 2
	// Corner furthest from the center decides.
	x0 := float64(i) * l.DieWidthMM
	y0 := float64(j) * l.DieHeightMM
	x1 := x0 + l.DieWidthMM
	y1 := y0 + l.DieHeightMM
	worstX := math.Max(math.Abs(x0), math.Abs(x1))
	worstY := math.Max(math.Abs(y0), math.Abs(y1))
	return worstX*worstX+worstY*worstY <= r*r
}

// gridRange returns the half-open index range covering the wafer.
func (l Layout) gridRange() (iMin, iMax, jMin, jMax int) {
	r := l.WaferDiameterMM / 2
	iMax = int(math.Ceil(r/l.DieWidthMM)) + 1
	jMax = int(math.Ceil(r/l.DieHeightMM)) + 1
	return -iMax, iMax, -jMax, jMax
}

// DieCount returns the number of whole dies on the wafer.
func (l Layout) DieCount() int {
	iMin, iMax, jMin, jMax := l.gridRange()
	n := 0
	for i := iMin; i < iMax; i++ {
		for j := jMin; j < jMax; j++ {
			if l.dieOnWafer(i, j) {
				n++
			}
		}
	}
	return n
}

// Plan is the stepping plan of a probe card across one wafer.
type Plan struct {
	// Touchdowns is the number of probe touchdowns needed.
	Touchdowns int
	// DiesProbed counts die-site contacts that land on real dies.
	DiesProbed int
	// WastedSites counts site positions that fell outside the wafer
	// (the periphery loss the paper ignores).
	WastedSites int
}

// Step computes the stepping plan: the probe card visits every block of
// SitesX×SitesY grid positions that contains at least one on-wafer die.
func (l Layout) Step() Plan {
	iMin, iMax, jMin, jMax := l.gridRange()
	var p Plan
	for i := iMin; i < iMax; i += l.SitesX {
		for j := jMin; j < jMax; j += l.SitesY {
			dies := 0
			for di := 0; di < l.SitesX; di++ {
				for dj := 0; dj < l.SitesY; dj++ {
					if l.dieOnWafer(i+di, j+dj) {
						dies++
					}
				}
			}
			if dies == 0 {
				continue
			}
			p.Touchdowns++
			p.DiesProbed += dies
			p.WastedSites += l.Sites() - dies
		}
	}
	return p
}

// Utilization returns the fraction of site contacts that landed on dies:
// 1 means the paper's no-periphery-loss idealization holds exactly.
func (p Plan) Utilization() float64 {
	total := p.DiesProbed + p.WastedSites
	if total == 0 {
		return 0
	}
	return float64(p.DiesProbed) / float64(total)
}

// EffectiveThroughputFactor returns the multiplier to apply to the paper's
// idealized throughput Dth to account for periphery losses: the ratio of
// dies actually probed to sites×touchdowns.
func (l Layout) EffectiveThroughputFactor() float64 {
	return l.Step().Utilization()
}

// WaferTestHours returns the time to test one wafer given the
// per-touchdown time in seconds.
func (l Layout) WaferTestHours(touchdownSec float64) float64 {
	return float64(l.Step().Touchdowns) * touchdownSec / 3600
}
