package wafer

import (
	"math"
	"testing"
)

func layout(x, y int) Layout {
	return Layout{WaferDiameterMM: 300, DieWidthMM: 10, DieHeightMM: 10, SitesX: x, SitesY: y}
}

func TestValidate(t *testing.T) {
	if err := layout(2, 2).Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	bad := []Layout{
		{WaferDiameterMM: 0, DieWidthMM: 10, DieHeightMM: 10, SitesX: 1, SitesY: 1},
		{WaferDiameterMM: 300, DieWidthMM: 0, DieHeightMM: 10, SitesX: 1, SitesY: 1},
		{WaferDiameterMM: 300, DieWidthMM: 10, DieHeightMM: 10, SitesX: 0, SitesY: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestDieCountApproximatesArea(t *testing.T) {
	l := layout(1, 1)
	n := l.DieCount()
	// Whole dies on a 300 mm circle with 10x10 mm dies: close to but
	// below the area ratio π·150²/100 ≈ 707.
	ideal := math.Pi * 150 * 150 / 100
	if n <= 0 || float64(n) > ideal {
		t.Errorf("DieCount = %d vs ideal %.0f", n, ideal)
	}
	if float64(n) < 0.85*ideal {
		t.Errorf("DieCount = %d suspiciously low vs ideal %.0f", n, ideal)
	}
}

func TestSingleSiteFullUtilization(t *testing.T) {
	p := layout(1, 1).Step()
	if p.WastedSites != 0 {
		t.Errorf("1x1 card wasted %d sites", p.WastedSites)
	}
	if got := p.Utilization(); got != 1 {
		t.Errorf("1x1 utilization = %g, want 1", got)
	}
	if p.DiesProbed != layout(1, 1).DieCount() {
		t.Errorf("probed %d, dies %d", p.DiesProbed, layout(1, 1).DieCount())
	}
}

func TestEveryDieProbedExactlyOnce(t *testing.T) {
	for _, g := range [][2]int{{2, 2}, {4, 1}, {8, 2}, {16, 1}} {
		l := layout(g[0], g[1])
		p := l.Step()
		if p.DiesProbed != l.DieCount() {
			t.Errorf("%dx%d: probed %d dies, wafer has %d",
				g[0], g[1], p.DiesProbed, l.DieCount())
		}
	}
}

func TestUtilizationDropsWithLargerCards(t *testing.T) {
	prev := 1.01
	for _, g := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 4}} {
		u := layout(g[0], g[1]).Step().Utilization()
		if u > prev {
			t.Errorf("%dx%d utilization %g above smaller card %g", g[0], g[1], u, prev)
		}
		if u <= 0 || u > 1 {
			t.Errorf("%dx%d utilization %g outside (0,1]", g[0], g[1], u)
		}
		prev = u
	}
}

func TestTouchdownsShrinkWithSites(t *testing.T) {
	t1 := layout(1, 1).Step().Touchdowns
	t4 := layout(2, 2).Step().Touchdowns
	if t4 >= t1 {
		t.Errorf("4-site card needs %d touchdowns, 1-site needs %d", t4, t1)
	}
	// At 100% utilization 4 sites would need exactly t1/4; periphery
	// losses allow somewhat more.
	if t4 < t1/4 {
		t.Errorf("4-site touchdowns %d below theoretical floor %d", t4, t1/4)
	}
}

func TestEffectiveThroughputFactor(t *testing.T) {
	l := layout(4, 4)
	if got, want := l.EffectiveThroughputFactor(), l.Step().Utilization(); got != want {
		t.Errorf("factor %g != utilization %g", got, want)
	}
}

func TestWaferTestHours(t *testing.T) {
	l := layout(2, 2)
	tds := l.Step().Touchdowns
	if got, want := l.WaferTestHours(3600), float64(tds); math.Abs(got-want) > 1e-9 {
		t.Errorf("WaferTestHours = %g, want %g", got, want)
	}
}
