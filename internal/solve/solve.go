// Package solve unifies the repository's optimizer backends behind one
// pluggable Solver API. The paper's evaluation (Section 7) rests on
// comparing three algorithms — the two-step greedy heuristic (Section 6),
// the exact branch-and-bound optimum, and the rectangle bin-packing
// baseline of [7] — and before this package each lived behind its own
// incompatible entry point, so every comparison hand-wired its own
// plumbing. A Solver is a Step 1 strategy: it designs the channel-group
// architecture, and every backend's design then flows through the same
// Step 2 redistribution and throughput scoring (core.BuildResult), so
// results are shaped identically and directly comparable.
//
// Backends register themselves in a process-global registry under a
// stable name; "heuristic" is the default and is what core.Optimize runs.
// The registry is what lets solver identity thread through every layer
// above — engine jobs and memo keys, the serving layer's cache keys and
// its GET /v1/solvers and POST /v1/compare endpoints, and the CLI
// -solver flags — without any of them importing the backend packages.
package solve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"multisite/internal/core"
	"multisite/internal/soc"
)

// DefaultName is the backend used when no solver is named: the paper's
// two-step greedy heuristic.
const DefaultName = "heuristic"

// Info is a backend's self-description, served by GET /v1/solvers and the
// CLIs' -list-solvers.
type Info struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Description is a one-line summary of the algorithm.
	Description string `json:"description"`
	// Complexity sketches the asymptotic cost in the testable module
	// count m (e.g. "greedy, ~O(m² log m)" or "Bell(m) partitions").
	Complexity string `json:"complexity"`
	// Exact reports whether the backend proves Step 1 optimality.
	Exact bool `json:"exact"`
	// MaxModules is the largest testable-module count the backend
	// accepts; 0 means unbounded.
	MaxModules int `json:"max_modules,omitempty"`
}

// Solver is one Step 1 strategy served through the registry. Solve designs
// the SOC's channel-group architecture for cfg.ATE and returns it evaluated
// through the shared Step 2 pipeline (core.BuildResult), so Results from
// different backends are interchangeable everywhere a core.Result flows:
// ReEvaluate, snapshots, the engine memo, the serving layer.
//
// Implementations must be stateless and safe for concurrent use, must
// honor ctx (a cancelled Solve returns the context's error and no partial
// result), and must be deterministic: equal inputs produce equal Results,
// byte-identical once serialized — the engine memo and the content-
// addressed result cache both assume it.
type Solver interface {
	// Name returns the registry key (stable, lower-case).
	Name() string
	// Info returns the backend's self-description.
	Info() Info
	// Solve designs and evaluates the SOC under the configuration.
	Solve(ctx context.Context, s *soc.SOC, cfg core.Config) (*core.Result, error)
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds a backend under its Name. It panics on an empty name or a
// duplicate registration — backend wiring is a process-construction-time
// concern, not a runtime condition.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("solve: Register with empty solver name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solve: duplicate solver %q", name))
	}
	registry[name] = s
}

// Get returns the backend registered under name; the empty string selects
// DefaultName. Unknown names error with the valid names listed, so CLI
// flags and HTTP fields surface the full menu on a typo.
func Get(name string) (Solver, error) {
	if name == "" {
		name = DefaultName
	}
	mu.RLock()
	s, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solve: unknown solver %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos returns every registered backend's Info, sorted by name — the
// single source GET /v1/solvers and the CLIs' -list-solvers render.
func Infos() []Info {
	mu.RLock()
	defer mu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, s := range registry {
		infos = append(infos, s.Info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Solve resolves name (empty means the default heuristic) and runs it —
// the one-call form for callers that do not hold a Solver.
func Solve(ctx context.Context, name string, s *soc.SOC, cfg core.Config) (*core.Result, error) {
	sv, err := Get(name)
	if err != nil {
		return nil, err
	}
	return sv.Solve(ctx, s, cfg)
}
