package solve

import (
	"context"
	"errors"
	"sync/atomic"

	"multisite/internal/core"
	"multisite/internal/soc"
)

// ErrTransient marks failures that reflect momentary backend health — an
// injected fault, a recovered panic, an open circuit breaker — rather
// than a property of the input. Wrapping layers (fault injection,
// resilience) wrap their errors around it, and the caching tiers use it
// as the "do not cache" signal: a transient failure replayed from a cache
// would outlive the condition that caused it.
var ErrTransient = errors.New("transient backend failure")

// Incumbent is a shared, concurrency-safe exclusive upper bound on Step 1
// wires: the best wire count any racing backend has realized so far. The
// zero value means "no bound yet". An exact search seeded with an
// Incumbent prunes from the first node (exact.Bound is satisfied).
type Incumbent struct {
	bound atomic.Int64
}

// Bound returns the current exclusive upper bound, 0 if none yet.
func (inc *Incumbent) Bound() int { return int(inc.bound.Load()) }

// Tighten lowers the bound to wires if that is an improvement, reporting
// whether it was. Non-positive wire counts are ignored.
func (inc *Incumbent) Tighten(wires int) bool {
	if wires <= 0 {
		return false
	}
	for {
		cur := inc.bound.Load()
		if cur != 0 && int64(wires) >= cur {
			return false
		}
		if inc.bound.CompareAndSwap(cur, int64(wires)) {
			return true
		}
	}
}

// AnytimeSolver is the optional anytime extension of Solver: a backend
// that can share an incumbent bound with concurrent backends and stream
// improving designs as it lands on them.
//
// SolveAnytime behaves like Solve with two hooks, both optional (nil):
// inc is a shared upper bound the backend must Tighten with every design
// it realizes and may use to prune its own search; observe receives each
// realized improving design, on the solving goroutine, before the final
// return. Wrapping solvers (resilience, fault injection) must preserve
// the interface so an AnytimeSolver stays anytime through any stack.
type AnytimeSolver interface {
	Solver
	SolveAnytime(ctx context.Context, s *soc.SOC, cfg core.Config, inc *Incumbent, observe func(*core.Result)) (*core.Result, error)
}

// SolveAnytimeOf runs sv through its anytime path when it has one, and
// degrades to plain Solve otherwise — the fallback still tightens the
// incumbent and reports its one final result to observe, so portfolio
// callers treat every backend uniformly.
func SolveAnytimeOf(ctx context.Context, sv Solver, s *soc.SOC, cfg core.Config, inc *Incumbent, observe func(*core.Result)) (*core.Result, error) {
	if a, ok := sv.(AnytimeSolver); ok {
		return a.SolveAnytime(ctx, s, cfg, inc, observe)
	}
	res, err := sv.Solve(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	if inc != nil {
		inc.Tighten(res.Step1.Wires())
	}
	if observe != nil {
		observe(res)
	}
	return res, nil
}
