package solve_test

import (
	"context"
	"fmt"
	"log"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/core"
	"multisite/internal/solve"
)

// ExampleGet looks a backend up by name and reads its self-description —
// the same metadata GET /v1/solvers serves.
func ExampleGet() {
	sv, err := solve.Get("exact")
	if err != nil {
		log.Fatal(err)
	}
	info := sv.Info()
	fmt.Printf("%s: exact=%v, bound=%d modules\n", info.Name, info.Exact, info.MaxModules)

	_, err = solve.Get("simplex")
	fmt.Println(err)
	// Output:
	// exact: exact=true, bound=12 modules
	// solve: unknown solver "simplex" (valid: baseline, exact, heuristic, portfolio)
}

// ExampleSolve runs one scenario through two backends and compares their
// Step 1 channel counts — the optimality-gap measurement as three lines
// of code.
func ExampleSolve() {
	s := benchdata.Shared("d695")
	cfg := core.Config{
		ATE:   ate.ATE{Channels: 256, Depth: 64 * benchdata.Ki, ClockHz: 5e6},
		Probe: ate.DefaultProbeStation(),
	}
	for _, name := range []string{"heuristic", "exact"} {
		res, err := solve.Solve(context.Background(), name, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s k=%d, nmax=%d, best n=%d\n",
			name, res.Step1.Channels(), res.MaxSites, res.Best.Sites)
	}
	// Output:
	// heuristic k=22, nmax=11, best n=11
	// exact     k=22, nmax=11, best n=11
}
