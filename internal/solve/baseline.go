package solve

import (
	"context"
	"fmt"

	"multisite/internal/baseline"
	"multisite/internal/core"
	"multisite/internal/soc"
	"multisite/internal/tam"
	"multisite/internal/wrapper"
)

func init() { Register(baselineSolver{}) }

// baselineSolver is the comparison method of reference [7]: rectangle
// bin-packing of module tests into the vector memory (internal/baseline),
// served through the channel-group model the rest of the system speaks.
//
// A packing is a 2D schedule — modules may reuse the same wires at
// different cycles with different widths — which the serial channel-group
// model cannot express directly. The backend therefore realizes the
// packing in two stages: the skyline packer picks the bin width and each
// module's rectangle width (exactly [7]'s decisions), then the rectangles
// are regrouped into serial test buses first-fit in packing order, each
// module joining the group where its refit test time adds the least fill
// (the paper's smallest-added-depth rule) and opening a group at its
// packed width otherwise. The realized wire count is therefore >= the raw
// packing bound of [7] — Table 1 keeps reporting the raw bound via
// internal/baseline directly; this backend reports what the packing costs
// once it must run on real channel groups. DESIGN.md §9 discusses the
// gap.
type baselineSolver struct{}

func (baselineSolver) Name() string { return "baseline" }

func (baselineSolver) Info() Info {
	return Info{
		Name:        "baseline",
		Description: "rectangle bin-packing of [7] (skyline best-fit), regrouped onto serial channel groups, then the shared Step 2",
		Complexity:  "per bin width: O(m x pareto widths x wires) skyline scan",
	}
}

func (baselineSolver) Solve(ctx context.Context, s *soc.SOC, cfg core.Config) (*core.Result, error) {
	pk, err := baseline.DesignCtx(ctx, s, cfg.ATE)
	if err != nil {
		return nil, err
	}
	arch, err := regroup(s, pk, cfg.ATE.Depth, cfg.ATE.Channels/2)
	if err != nil {
		return nil, err
	}
	return core.BuildResult(ctx, s, cfg, arch)
}

// regroup realizes a rectangle packing as a serial channel-group
// architecture: placements are visited in packing order (decreasing
// minimum area — deterministic), each joining the existing group where
// its test time at the group's width adds the least fill while staying
// within depth, or opening a new group at its packed rectangle width.
// Errors when the realization needs more wires than the ATE offers.
func regroup(s *soc.SOC, pk *baseline.Packing, depth int64, maxWires int) (*tam.Architecture, error) {
	d := wrapper.For(s)
	arch := &tam.Architecture{SOC: s, Designer: d, Depth: depth}
	wires := 0
	for _, pl := range pk.Placements {
		best, bestTime := -1, int64(0)
		for gi, g := range arch.Groups {
			t := d.Time(pl.Module, g.Width)
			if g.Fill+t > depth {
				continue
			}
			if best < 0 || t < bestTime {
				best, bestTime = gi, t
			}
		}
		if best < 0 {
			// The packing placed this rectangle within depth, so a fresh
			// group at its packed width always fits.
			arch.Groups = append(arch.Groups, &tam.Group{Width: pl.Width})
			wires += pl.Width
			best, bestTime = len(arch.Groups)-1, d.Time(pl.Module, pl.Width)
		}
		g := arch.Groups[best]
		g.Members = append(g.Members, pl.Module)
		g.Times = append(g.Times, bestTime)
		g.Fill += bestTime
	}
	if wires > maxWires {
		return nil, fmt.Errorf("baseline: serial regrouping of soc %s needs %d wires; ATE offers %d",
			s.Name, wires, maxWires)
	}
	return arch, nil
}
