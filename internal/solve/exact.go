package solve

import (
	"context"

	"multisite/internal/core"
	"multisite/internal/exact"
	"multisite/internal/soc"
	"multisite/internal/tam"
	"multisite/internal/wrapper"
)

func init() { Register(exactSolver{}) }

// exactSolver is the branch-and-bound ground truth: it searches the full
// set-partition lattice for the provably minimum-wire channel-group
// design (internal/exact), then feeds that optimal Step 1 through the
// shared Step 2 redistribution — the exact counterpart of the two-step
// algorithm, and the reference the heuristic's optimality gap is measured
// against. Bounded to exact.MaxModules testable modules; larger SOCs
// return an error rather than an unbounded search. The Step 1 ablation
// knobs (cfg.TAM) tune the heuristic and are ignored here.
type exactSolver struct{}

func (exactSolver) Name() string { return "exact" }

func (exactSolver) Info() Info {
	return Info{
		Name:        "exact",
		Description: "branch-and-bound over canonical set partitions; provably minimum-wire Step 1, then the shared Step 2",
		Complexity:  "Bell(m) partitions with monotone pruning",
		Exact:       true,
		MaxModules:  exact.MaxModules,
	}
}

func (exactSolver) Solve(ctx context.Context, s *soc.SOC, cfg core.Config) (*core.Result, error) {
	sol, err := exact.SolveCtx(ctx, s, cfg.ATE)
	if err != nil {
		return nil, err
	}
	arch := architectureOf(s, cfg.ATE.Depth, sol.Blocks, sol.Widths)
	return core.BuildResult(ctx, s, cfg, arch)
}

// SolveAnytime is the anytime face of the branch-and-bound: the shared
// incumbent seeds (and keeps tightening) the search's pruning bound, and
// every improving partition is realized through the shared Step 2 and
// handed to observe before the search continues. A search that exhausts
// the lattice without beating the incumbent returns
// exact.ErrNoImprovement — the portfolio reads that as an optimality
// proof for the incumbent, not a failure.
func (e exactSolver) SolveAnytime(ctx context.Context, s *soc.SOC, cfg core.Config, inc *Incumbent, observe func(*core.Result)) (*core.Result, error) {
	opts := exact.Options{}
	if inc != nil {
		opts.Bound = inc
	}
	if observe != nil || inc != nil {
		opts.OnImproving = func(sol *exact.Solution) {
			if inc != nil {
				inc.Tighten(sol.Wires)
			}
			if observe == nil {
				return
			}
			arch := architectureOf(s, cfg.ATE.Depth, sol.Blocks, sol.Widths)
			if res, err := core.BuildResult(ctx, s, cfg, arch); err == nil {
				observe(res)
			}
		}
	}
	sol, err := exact.SolveWith(ctx, s, cfg.ATE, opts)
	if err != nil {
		return nil, err
	}
	arch := architectureOf(s, cfg.ATE.Depth, sol.Blocks, sol.Widths)
	res, err := core.BuildResult(ctx, s, cfg, arch)
	if err != nil {
		return nil, err
	}
	if inc != nil {
		inc.Tighten(res.Step1.Wires())
	}
	return res, nil
}

// architectureOf materializes explicit (block, width) assignments as a
// channel-group architecture: one group per block, every member refit at
// the block's width through the shared wrapper designer, so the result
// satisfies tam's Validate by construction.
func architectureOf(s *soc.SOC, depth int64, blocks [][]int, widths []int) *tam.Architecture {
	d := wrapper.For(s)
	arch := &tam.Architecture{SOC: s, Designer: d, Depth: depth}
	for b, members := range blocks {
		g := &tam.Group{Width: widths[b]}
		for _, mi := range members {
			t := d.Time(mi, g.Width)
			g.Members = append(g.Members, mi)
			g.Times = append(g.Times, t)
			g.Fill += t
		}
		arch.Groups = append(arch.Groups, g)
	}
	return arch
}
