package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"multisite/internal/core"
	"multisite/internal/exact"
	"multisite/internal/soc"
)

// PortfolioName is the registry key of the anytime portfolio backend.
const PortfolioName = "portfolio"

func init() { Register(NewPortfolio(PortfolioOptions{})) }

// PortfolioOptions parameterize NewPortfolio.
type PortfolioOptions struct {
	// Backends lists the registry names the portfolio races, in
	// preference order (ties in the final pick go to the earlier name).
	// Empty means {heuristic, exact}.
	Backends []string
	// Resolve maps a backend name to the Solver instance to run; nil
	// means the process-global registry (Get). The serving layer passes
	// its own resolver so the raced backends carry that server's circuit
	// breakers and fault-injection wrappers.
	Resolve func(name string) (Solver, error)
}

// Portfolio is the anytime meta-backend: it races its backends
// concurrently on one scenario, shares a wire-count incumbent between
// them (the heuristic's first design seeds the exact search's pruning
// bound), publishes the best design so far as backends improve, and on a
// context deadline returns the current best marked Degraded instead of an
// error. When the exact leg completes — either with the optimum or by
// exhausting the lattice without beating the incumbent — the result is
// marked Optimal.
//
// Determinism: with no deadline and healthy backends, the raced searches
// are each deterministic, and the final pick compares completed outcomes
// by wire count only, ties to the earlier backend. The wires-only rule is
// what makes the race's internal timing invisible: when both legs land on
// equal wires, the exact leg either finishes its own equal-wire partition
// or prunes against the heuristic's incumbent and reports
// ErrNoImprovement — which of the two happens depends on timing, but
// under wires-only the pick is the earlier backend's design either way.
// Under a deadline or a transient backend failure the result does depend
// on timing — exactly the runs flagged Degraded, which the caching tiers
// refuse to store.
type Portfolio struct {
	backends []string
	resolve  func(name string) (Solver, error)
}

// NewPortfolio builds a portfolio backend. The zero options value is the
// registered default: heuristic + exact through the global registry.
func NewPortfolio(opts PortfolioOptions) *Portfolio {
	p := &Portfolio{backends: opts.Backends, resolve: opts.Resolve}
	if len(p.backends) == 0 {
		p.backends = []string{DefaultName, "exact"}
	}
	if p.resolve == nil {
		p.resolve = Get
	}
	return p
}

func (p *Portfolio) Name() string { return PortfolioName }

func (p *Portfolio) Info() Info {
	return Info{
		Name:        PortfolioName,
		Description: "races heuristic + exact with a shared incumbent; best-so-far on deadline (degraded), proven optimum when the exact leg completes",
		Complexity:  "max of the raced backends, cut short by the deadline",
		MaxModules:  0, // the heuristic leg keeps any SOC feasible
	}
}

// Solve runs the race with no external observer.
func (p *Portfolio) Solve(ctx context.Context, s *soc.SOC, cfg core.Config) (*core.Result, error) {
	return p.SolveAnytime(ctx, s, cfg, nil, nil)
}

// outcome is one backend's terminal state in a race.
type outcome struct {
	res *core.Result
	err error
}

// SolveAnytime races the backends. Improving designs flow to observe in
// strictly improving (wires, then test-cycles) order, serialized under
// the portfolio's publish lock. An external incumbent, when supplied,
// seeds the internal one and is tightened alongside it.
func (p *Portfolio) SolveAnytime(ctx context.Context, s *soc.SOC, cfg core.Config, ext *Incumbent, observe func(*core.Result)) (*core.Result, error) {
	inc := &Incumbent{}
	if ext != nil {
		if b := ext.Bound(); b > 0 {
			inc.Tighten(b)
		}
	}

	// tracker publishes the best-so-far under a mutex: only strict
	// improvements are kept and forwarded, so observers see a monotone
	// sequence no matter how backend goroutines interleave.
	var (
		mu   sync.Mutex
		best *core.Result
	)
	publish := func(res *core.Result) {
		mu.Lock()
		defer mu.Unlock()
		if best != nil && !better(res, best) {
			return
		}
		best = res
		inc.Tighten(res.Step1.Wires())
		if ext != nil {
			ext.Tighten(res.Step1.Wires())
		}
		if observe != nil {
			observe(res)
		}
	}

	outcomes := make([]outcome, len(p.backends))
	exactLeg := make([]bool, len(p.backends))
	var wg sync.WaitGroup
	for i, name := range p.backends {
		sv, err := p.resolve(name)
		if err != nil {
			outcomes[i] = outcome{err: err}
			continue
		}
		exactLeg[i] = sv.Info().Exact
		wg.Add(1)
		go func(i int, name string, sv Solver) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					outcomes[i] = outcome{err: fmt.Errorf("portfolio: backend %q panicked: %v: %w", name, r, ErrTransient)}
				}
			}()
			res, err := SolveAnytimeOf(ctx, sv, s, cfg, inc, publish)
			outcomes[i] = outcome{res: res, err: err}
			if err == nil && res != nil {
				publish(res)
			}
		}(i, name, sv)
	}
	wg.Wait()

	// Final pick: the completed outcome with the fewest Step 1 wires,
	// ties to the earlier backend (see the determinism note on the type).
	// An improving design from a leg that then died beats it only on
	// strictly fewer wires — which can only happen on a cancelled or
	// failed leg, i.e. on runs already bound for the Degraded (uncached)
	// path.
	var final *core.Result
	for i := range outcomes {
		o := outcomes[i]
		if o.err != nil || o.res == nil {
			continue
		}
		if final == nil || o.res.Step1.Wires() < final.Step1.Wires() {
			final = o.res
		}
	}
	if best != nil && (final == nil || best.Step1.Wires() < final.Step1.Wires()) {
		final = best
	}

	optimal, transient := false, false
	for i := range outcomes {
		err := outcomes[i].err
		if exactLeg[i] {
			if err == nil {
				optimal = true
			} else if errors.Is(err, exact.ErrNoImprovement) &&
				final != nil && final.Step1.Wires() == inc.Bound() {
				// The exhausted search proves no partition beats the
				// bound; that proof covers the final pick only when the
				// pick is what set the bound.
				optimal = true
			}
		}
		if err != nil && (errors.Is(err, ErrTransient) || isCancellation(err)) {
			transient = true
		}
	}

	if final == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		errs := make([]error, 0, len(outcomes))
		for i := range outcomes {
			if outcomes[i].err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", p.backends[i], outcomes[i].err))
			}
		}
		return nil, fmt.Errorf("portfolio: no backend produced a design: %w", errors.Join(errs...))
	}
	final.Optimal = optimal
	final.Degraded = !optimal && (ctx.Err() != nil || transient)
	return final, nil
}

// better reports a strict improvement: fewer Step 1 wires, or equal wires
// and a shorter Step 1 test.
func better(a, b *core.Result) bool {
	aw, bw := a.Step1.Wires(), b.Step1.Wires()
	if aw != bw {
		return aw < bw
	}
	return a.Step1.TestCycles() < b.Step1.TestCycles()
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
