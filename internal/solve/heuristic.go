package solve

import (
	"context"

	"multisite/internal/core"
	"multisite/internal/soc"
)

func init() { Register(heuristicSolver{}) }

// heuristicSolver is the paper's two-step algorithm — the default backend.
// It is a pure delegate to core.OptimizeCtx, so a Result served through
// the registry is bit-identical to one from a direct core.Optimize call
// (the delegation is pinned by TestHeuristicMatchesCoreOptimize).
type heuristicSolver struct{}

func (heuristicSolver) Name() string { return DefaultName }

func (heuristicSolver) Info() Info {
	return Info{
		Name:        DefaultName,
		Description: "two-step greedy channel-group design (Section 6): free-memory rule, squeeze portfolio, Step 2 widening",
		Complexity:  "greedy with restarts, polynomial in modules x wires",
	}
}

func (heuristicSolver) Solve(ctx context.Context, s *soc.SOC, cfg core.Config) (*core.Result, error) {
	return core.OptimizeCtx(ctx, s, cfg)
}

// SolveAnytime runs the greedy design once (it has no internal improving
// sequence worth streaming), then tightens the shared incumbent with its
// wire count — which is what lets a racing exact search prune from the
// first node — and reports the design to observe.
func (h heuristicSolver) SolveAnytime(ctx context.Context, s *soc.SOC, cfg core.Config, inc *Incumbent, observe func(*core.Result)) (*core.Result, error) {
	res, err := core.OptimizeCtx(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	if inc != nil {
		inc.Tighten(res.Step1.Wires())
	}
	if observe != nil {
		observe(res)
	}
	return res, nil
}
