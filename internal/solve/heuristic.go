package solve

import (
	"context"

	"multisite/internal/core"
	"multisite/internal/soc"
)

func init() { Register(heuristicSolver{}) }

// heuristicSolver is the paper's two-step algorithm — the default backend.
// It is a pure delegate to core.OptimizeCtx, so a Result served through
// the registry is bit-identical to one from a direct core.Optimize call
// (the delegation is pinned by TestHeuristicMatchesCoreOptimize).
type heuristicSolver struct{}

func (heuristicSolver) Name() string { return DefaultName }

func (heuristicSolver) Info() Info {
	return Info{
		Name:        DefaultName,
		Description: "two-step greedy channel-group design (Section 6): free-memory rule, squeeze portfolio, Step 2 widening",
		Complexity:  "greedy with restarts, polynomial in modules x wires",
	}
}

func (heuristicSolver) Solve(ctx context.Context, s *soc.SOC, cfg core.Config) (*core.Result, error) {
	return core.OptimizeCtx(ctx, s, cfg)
}
