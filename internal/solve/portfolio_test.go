package solve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/core"
	"multisite/internal/faultinject"
	"multisite/internal/solve"
)

func propConfig(seed int) core.Config {
	return core.Config{ATE: benchdata.PropATE(seed), Probe: ate.DefaultProbeStation()}
}

func adversarialConfig() core.Config {
	return core.Config{ATE: benchdata.AdversarialATE(), Probe: ate.DefaultProbeStation()}
}

// TestPortfolioOptimalWithoutDeadline: on chips the exact search finishes,
// the portfolio returns the proven optimum, marked Optimal and never
// Degraded — identical wires to the exact backend alone.
func TestPortfolioOptimalWithoutDeadline(t *testing.T) {
	for _, seed := range []int{3, 42, 166} {
		s := benchdata.Generate(benchdata.PropSpec(seed))
		cfg := propConfig(seed)
		opt, err := solve.Solve(context.Background(), "exact", s, cfg)
		if err != nil {
			continue
		}
		res, err := solve.Solve(context.Background(), "portfolio", s, cfg)
		if err != nil {
			t.Fatalf("seed %d: portfolio: %v", seed, err)
		}
		if !res.Optimal || res.Degraded {
			t.Errorf("seed %d: optimal=%v degraded=%v, want true/false", seed, res.Optimal, res.Degraded)
		}
		if res.Step1.Wires() != opt.Step1.Wires() {
			t.Errorf("seed %d: portfolio wires %d != exact optimum %d",
				seed, res.Step1.Wires(), opt.Step1.Wires())
		}
		if err := res.Step1.Validate(); err != nil {
			t.Errorf("seed %d: portfolio architecture invalid: %v", seed, err)
		}
	}
}

// TestPortfolioDegradedOnDeadline is the graceful-degradation contract on
// the crafted adversarial chip: the exact search needs ~1.3s, so a 250ms
// deadline cuts it — and the portfolio returns the best feasible design
// so far (at worst the heuristic's, at 250ms usually better) marked
// Degraded, with a nil error, instead of surfacing the deadline.
func TestPortfolioDegradedOnDeadline(t *testing.T) {
	s := benchdata.Adversarial()
	cfg := adversarialConfig()
	heur, err := solve.Solve(context.Background(), "heuristic", s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	res, err := solve.Solve(ctx, "portfolio", s, cfg)
	if err != nil {
		t.Fatalf("portfolio under deadline: %v (want degraded result, not error)", err)
	}
	if !res.Degraded || res.Optimal {
		t.Errorf("degraded=%v optimal=%v, want true/false", res.Degraded, res.Optimal)
	}
	if got, max := res.Step1.Wires(), heur.Step1.Wires(); got > max {
		t.Errorf("degraded wires %d worse than heuristic alone %d", got, max)
	}
	if err := res.Step1.Validate(); err != nil {
		t.Errorf("degraded architecture invalid: %v", err)
	}
	if res.Step1.TestCycles() > cfg.ATE.Depth {
		t.Errorf("degraded fill %d exceeds depth %d", res.Step1.TestCycles(), cfg.ATE.Depth)
	}
}

// TestPortfolioHeuristicOnlyOnFailedExact: an exact leg that fails
// transiently (injected error / hang) leaves the heuristic leg to answer;
// the result is Degraded — a transient failure must not be cached as if
// it were the scenario's true answer.
func TestPortfolioHeuristicOnlyOnFailedExact(t *testing.T) {
	s := benchdata.Generate(benchdata.PropSpec(42))
	cfg := propConfig(42)
	heur, err := solve.Solve(context.Background(), "heuristic", s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"error", "panic"} {
		plan, err := faultinject.ParsePlan(mode + ",repeat")
		if err != nil {
			t.Fatal(err)
		}
		p := solve.NewPortfolio(solve.PortfolioOptions{
			Resolve: func(name string) (solve.Solver, error) {
				sv, err := solve.Get(name)
				if err != nil {
					return nil, err
				}
				if name == "exact" {
					return faultinject.Wrap(sv, plan), nil
				}
				return sv, nil
			},
		})
		res, err := p.Solve(context.Background(), s, cfg)
		if err != nil {
			t.Fatalf("%s-mode exact: portfolio errored: %v", mode, err)
		}
		if !res.Degraded || res.Optimal {
			t.Errorf("%s-mode exact: degraded=%v optimal=%v, want true/false", mode, res.Degraded, res.Optimal)
		}
		if res.Step1.Wires() != heur.Step1.Wires() {
			t.Errorf("%s-mode exact: wires %d != heuristic's %d", mode, res.Step1.Wires(), heur.Step1.Wires())
		}
	}
}

// TestPortfolioAllBackendsFail: when every leg dies the portfolio finally
// does error — a transient error (so nothing caches it), joining the
// per-backend causes.
func TestPortfolioAllBackendsFail(t *testing.T) {
	s := benchdata.Generate(benchdata.PropSpec(42))
	plan, _ := faultinject.ParsePlan("error,repeat")
	p := solve.NewPortfolio(solve.PortfolioOptions{
		Resolve: func(name string) (solve.Solver, error) {
			sv, err := solve.Get(name)
			if err != nil {
				return nil, err
			}
			return faultinject.Wrap(sv, plan), nil
		},
	})
	_, err := p.Solve(context.Background(), s, propConfig(42))
	if err == nil {
		t.Fatal("portfolio with all backends failing returned nil error")
	}
	if !errors.Is(err, solve.ErrTransient) {
		t.Errorf("error %v does not match ErrTransient — it could be cached", err)
	}
}

// TestPortfolioObserveMonotone: the anytime stream is strictly improving
// under the publish lock no matter how the two legs interleave, and the
// final result is at least as good as the last observed design.
func TestPortfolioObserveMonotone(t *testing.T) {
	s := benchdata.Adversarial()
	cfg := adversarialConfig()
	p := solve.NewPortfolio(solve.PortfolioOptions{})
	var (
		mu   sync.Mutex
		seen []int
	)
	res, err := p.SolveAnytime(context.Background(), s, cfg, nil, func(r *core.Result) {
		mu.Lock()
		seen = append(seen, r.Step1.Wires())
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		t.Fatalf("expected multiple improving designs on the adversarial chip, saw %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] > seen[i-1] {
			t.Fatalf("observe stream regressed: %v", seen)
		}
	}
	if res.Step1.Wires() > seen[len(seen)-1] {
		t.Errorf("final wires %d worse than last observed %d", res.Step1.Wires(), seen[len(seen)-1])
	}
	if !res.Optimal {
		t.Errorf("uncut adversarial run should be optimal")
	}
}

// TestPortfolioSharedIncumbent: an external incumbent seeded at the known
// optimum turns the exact leg into a pure optimality proof
// (ErrNoImprovement internally) — and the portfolio still reports
// Optimal when its final pick carries the bound's wire count.
func TestPortfolioSharedIncumbent(t *testing.T) {
	s := benchdata.Generate(benchdata.PropSpec(3))
	cfg := propConfig(3)
	opt, err := solve.Solve(context.Background(), "exact", s, cfg)
	if err != nil {
		t.Skip("seed 3 infeasible for exact")
	}
	inc := &solve.Incumbent{}
	inc.Tighten(opt.Step1.Wires() + 1)
	p := solve.NewPortfolio(solve.PortfolioOptions{})
	res, err := p.SolveAnytime(context.Background(), s, cfg, inc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step1.Wires() != opt.Step1.Wires() {
		t.Errorf("wires %d != optimum %d", res.Step1.Wires(), opt.Step1.Wires())
	}
	if !res.Optimal {
		t.Error("completed run with seeded incumbent not marked Optimal")
	}
	if got := inc.Bound(); got != opt.Step1.Wires() {
		t.Errorf("external incumbent not tightened to the optimum: bound=%d want %d", got, opt.Step1.Wires())
	}
}

// TestSeed166WorstGapRegression pins the property corpus's worst
// heuristic gap — seed 166, where the greedy design needs 69 wires
// against a proven optimum of 12 — and proves the portfolio erases it:
// with no deadline the portfolio returns the optimum (seed 166's exact
// search is instant; only 4 modules are testable).
func TestSeed166WorstGapRegression(t *testing.T) {
	s := benchdata.Generate(benchdata.PropSpec(166))
	cfg := propConfig(166)
	opt, err := solve.Solve(context.Background(), "exact", s, cfg)
	if err != nil {
		t.Fatalf("seed 166 exact: %v", err)
	}
	heur, err := solve.Solve(context.Background(), "heuristic", s, cfg)
	if err != nil {
		t.Fatalf("seed 166 heuristic: %v", err)
	}
	if got, want := heur.Step1.Wires()-opt.Step1.Wires(), 57; got != want {
		t.Errorf("seed 166 gap = %d wires (heuristic %d, exact %d), want the pinned %d — corpus drifted",
			got, heur.Step1.Wires(), opt.Step1.Wires(), want)
	}
	res, err := solve.Solve(context.Background(), "portfolio", s, cfg)
	if err != nil {
		t.Fatalf("seed 166 portfolio: %v", err)
	}
	if res.Step1.Wires() != opt.Step1.Wires() || !res.Optimal {
		t.Errorf("portfolio wires=%d optimal=%v, want optimum %d/true",
			res.Step1.Wires(), res.Optimal, opt.Step1.Wires())
	}
}

// TestPortfolioDeadlineProperty reruns the 200-seed differential with the
// portfolio under a per-seed deadline: the portfolio's gap to the proven
// optimum is never worse than the heuristic's (it races the heuristic, so
// its result is at least that good), it never beats the optimum, and the
// within-one-wire rate holds at >= 95% — the portfolio preserves the
// paper's heuristic-quality floor while usually landing the optimum.
func TestPortfolioDeadlineProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed differential corpus")
	}
	const seeds = 200
	feasible, withinOne := 0, 0
	worstGap, worstSeed := 0, -1
	for seed := 0; seed < seeds; seed++ {
		s := benchdata.Generate(benchdata.PropSpec(seed))
		cfg := propConfig(seed)
		opt, err := solve.Solve(context.Background(), "exact", s, cfg)
		if err != nil {
			continue
		}
		heur, err := solve.Solve(context.Background(), "heuristic", s, cfg)
		if err != nil {
			t.Errorf("seed %d: heuristic infeasible where exact succeeded: %v", seed, err)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := solve.Solve(ctx, "portfolio", s, cfg)
		cancel()
		if err != nil {
			t.Errorf("seed %d: portfolio errored under deadline: %v", seed, err)
			continue
		}
		feasible++
		gap := res.Step1.Wires() - opt.Step1.Wires()
		if gap < 0 {
			t.Errorf("seed %d: portfolio wires %d beat the proven optimum %d", seed, res.Step1.Wires(), opt.Step1.Wires())
		}
		if hg := heur.Step1.Wires() - opt.Step1.Wires(); gap > hg {
			t.Errorf("seed %d: portfolio gap %d worse than heuristic gap %d", seed, gap, hg)
		}
		if gap <= 1 {
			withinOne++
		}
		if gap > worstGap {
			worstGap, worstSeed = gap, seed
		}
		if err := res.Step1.Validate(); err != nil {
			t.Errorf("seed %d: portfolio architecture invalid: %v", seed, err)
		}
	}
	if feasible < 100 {
		t.Fatalf("corpus degenerated: only %d/%d seeds feasible", feasible, seeds)
	}
	t.Logf("feasible=%d withinOneWire=%d (%.1f%%) worstGap=%d (seed %d)",
		feasible, withinOne, 100*float64(withinOne)/float64(feasible), worstGap, worstSeed)
	if frac := float64(withinOne) / float64(feasible); frac < 0.95 {
		t.Errorf("only %.1f%% within one wire of the optimum, want >= 95%%", 100*frac)
	}
}
