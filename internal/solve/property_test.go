package solve_test

import (
	"context"
	"fmt"
	"testing"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/core"
	"multisite/internal/exact"
	"multisite/internal/solve"
)

// TestRegistryExactVsHeuristicProperty reruns the PR 4 property-based
// differential — exact vs heuristic on 200 seeded random small SOCs —
// entirely through the solver registry, with the identical corpus and
// thresholds as core's TestStep1VsExactProperty: feasibility implication,
// heuristic wires >= the proven optimum, designs validate, and ≥ 95% of
// feasible seeds within one wire. Passing here proves the registry
// plumbing (backend dispatch, architecture realization, the shared Step 2)
// preserves both algorithms bit-for-bit where it matters: the exact
// backend's Step 1 wires equal the raw branch-and-bound's optimum, and
// the heuristic backend's equal core.Optimize's.
func TestRegistryExactVsHeuristicProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed differential corpus")
	}
	const seeds = 200
	feasible, withinOne := 0, 0
	worstGap, worstSeed := 0, -1
	for seed := 0; seed < seeds; seed++ {
		spec := benchdata.GenSpec{
			Name: fmt.Sprintf("prop%03d", seed), Seed: int64(1000 + seed),
			LogicCores:  2 + seed%5,
			MemoryCores: seed % 3,
			TargetArea:  int64(64+(seed%7)*32) * benchdata.Ki,
			Spread:      0.5 + float64(seed%4)*0.5,
			MaxChainLen: 64 + (seed%3)*96,
		}
		s := benchdata.Generate(spec)
		cfg := core.Config{
			ATE: ate.ATE{
				Channels: 64 + (seed%4)*64,
				Depth:    int64(8+(seed%5)*14) * benchdata.Ki,
				ClockHz:  5e6,
			},
			Probe: ate.DefaultProbeStation(),
		}
		opt, err := solve.Solve(context.Background(), "exact", s, cfg)
		if err != nil {
			continue // infeasible or oversized corpus points are skipped
		}
		res, err := solve.Solve(context.Background(), "heuristic", s, cfg)
		if err != nil {
			t.Errorf("seed %d: heuristic infeasible where exact found wires=%d: %v",
				seed, opt.Step1.Wires(), err)
			continue
		}
		feasible++
		gap := res.Step1.Wires() - opt.Step1.Wires()
		if gap < 0 {
			t.Errorf("seed %d: heuristic wires %d beat the proven optimum %d — exact backend unsound",
				seed, res.Step1.Wires(), opt.Step1.Wires())
		}
		if gap <= 1 {
			withinOne++
		}
		if gap > worstGap {
			worstGap, worstSeed = gap, seed
		}
		for name, r := range map[string]*core.Result{"exact": opt, "heuristic": res} {
			if err := r.Step1.Validate(); err != nil {
				t.Errorf("seed %d: %s architecture invalid: %v", seed, name, err)
			}
			if r.Step1.TestCycles() > cfg.ATE.Depth {
				t.Errorf("seed %d: %s fill %d exceeds depth %d",
					seed, name, r.Step1.TestCycles(), cfg.ATE.Depth)
			}
		}
		// The realized exact architecture must carry the raw solver's
		// optimal wire count through the registry unchanged.
		if raw, err := exact.Solve(s, cfg.ATE); err == nil && raw.Wires != opt.Step1.Wires() {
			t.Errorf("seed %d: registry exact wires %d != raw branch-and-bound %d",
				seed, opt.Step1.Wires(), raw.Wires)
		}
	}
	if feasible < 100 {
		t.Fatalf("corpus degenerated: only %d/%d seeds feasible", feasible, seeds)
	}
	t.Logf("feasible=%d withinOneWire=%d (%.1f%%) worstGap=%d wires (seed %d)",
		feasible, withinOne, 100*float64(withinOne)/float64(feasible), worstGap, worstSeed)
	if frac := float64(withinOne) / float64(feasible); frac < 0.95 {
		t.Errorf("only %.1f%% of feasible seeds within one wire of the exact optimum, want >= 95%%", 100*frac)
	}
}
