package solve_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/core"
	"multisite/internal/engine"
	"multisite/internal/solve"
)

// conformanceSOC is small enough (≤ 7 testable modules) that every
// backend — the Bell-number exact search included — solves it in
// milliseconds, yet rich enough (mixed logic and memory cores) to
// exercise grouping decisions.
func conformanceSOC() *benchdata.GenSpec {
	return &benchdata.GenSpec{
		Name: "conform", Seed: 42,
		LogicCores:  4,
		MemoryCores: 1,
		TargetArea:  128 * benchdata.Ki,
		Spread:      1.0,
		MaxChainLen: 128,
	}
}

func conformanceConfig() core.Config {
	return core.Config{
		ATE:   ate.ATE{Channels: 128, Depth: 36 * benchdata.Ki, ClockHz: 5e6},
		Probe: ate.DefaultProbeStation(),
	}
}

// TestSolverConformance is the registry-wide contract suite: every
// registered backend — current and future — must be deterministic across
// repeated runs, return promptly on a cancelled context without caching a
// partial design, and produce architectures that pass tam's Validate and
// fit the vector memory.
func TestSolverConformance(t *testing.T) {
	s := benchdata.Generate(*conformanceSOC())
	cfg := conformanceConfig()
	for _, name := range solve.Names() {
		sv, err := solve.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name+"/determinism", func(t *testing.T) {
			first, err := sv.Solve(context.Background(), s, cfg)
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			second, err := sv.Solve(context.Background(), s, cfg)
			if err != nil {
				t.Fatalf("repeat solve: %v", err)
			}
			a, err := first.Snapshot().MarshalBytes()
			if err != nil {
				t.Fatal(err)
			}
			b, err := second.Snapshot().MarshalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("two runs serialize differently:\n%s\n%s", a, b)
			}
		})
		t.Run(name+"/feasibility", func(t *testing.T) {
			res, err := sv.Solve(context.Background(), s, cfg)
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if err := res.Step1.Validate(); err != nil {
				t.Errorf("step 1 architecture invalid: %v", err)
			}
			if res.Step1.TestCycles() > cfg.ATE.Depth {
				t.Errorf("step 1 fill %d exceeds depth %d", res.Step1.TestCycles(), cfg.ATE.Depth)
			}
			if res.Step1.Channels() > cfg.ATE.Channels {
				t.Errorf("step 1 channels %d exceed the ATE's %d", res.Step1.Channels(), cfg.ATE.Channels)
			}
			for n := 1; n <= res.MaxSites; n++ {
				arch := res.Arches[n-1]
				if err := arch.Validate(); err != nil {
					t.Errorf("n=%d architecture invalid: %v", n, err)
				}
				if arch.TestCycles() > cfg.ATE.Depth {
					t.Errorf("n=%d fill %d exceeds depth %d", n, arch.TestCycles(), cfg.ATE.Depth)
				}
			}
			if res.BestArch == nil || res.Best.Sites < 1 {
				t.Errorf("no best operating point: %+v", res.Best)
			}
		})
		t.Run(name+"/cancellation", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := sv.Solve(ctx, s, cfg); err != context.Canceled {
				t.Errorf("cancelled solve returned %v, want context.Canceled", err)
			}
			// Through a memo, the cancellation must not poison the entry:
			// the next request recomputes and succeeds.
			memo := engine.NewMemo()
			if _, err := memo.DesignSolverCtx(ctx, name, s, cfg); err != context.Canceled {
				t.Fatalf("memoized cancelled solve returned %v", err)
			}
			res, err := memo.DesignSolverCtx(context.Background(), name, s, cfg)
			if err != nil || res == nil {
				t.Fatalf("recompute after cancellation failed: %v", err)
			}
			if _, misses := memo.Stats(); misses != 2 {
				t.Errorf("misses = %d, want 2: the cancelled design must not be cached", misses)
			}
		})
	}
}

// TestHeuristicMatchesCoreOptimize pins the delegation contract: the
// registry's default backend returns results byte-identical (serialized)
// to a direct core.Optimize call, so porting callers onto the registry
// can never shift a golden.
func TestHeuristicMatchesCoreOptimize(t *testing.T) {
	s := benchdata.Shared("d695")
	cfg := core.Config{
		ATE:   ate.ATE{Channels: 256, Depth: 64 * benchdata.Ki, ClockHz: 5e6},
		Probe: ate.DefaultProbeStation(),
	}
	direct, err := core.Optimize(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := solve.Solve(context.Background(), "", s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := direct.Snapshot().MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaRegistry.Snapshot().MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("registry heuristic drifted from core.Optimize:\n%s\n%s", a, b)
	}
}

// TestExactBackendWiresMatchSolver checks the exact backend's realized
// architecture preserves the branch-and-bound's optimal wire count — the
// property the optimality-gap measurements rest on.
func TestExactBackendWiresMatchSolver(t *testing.T) {
	s := benchdata.Shared("d695")
	cfg := conformanceConfig()
	cfg.ATE.Channels = 256
	cfg.ATE.Depth = 64 * benchdata.Ki
	res, err := solve.Solve(context.Background(), "exact", s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := solve.Solve(context.Background(), "heuristic", s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step1.Wires() > heur.Step1.Wires() {
		t.Errorf("exact wires %d exceed heuristic wires %d — not an optimum",
			res.Step1.Wires(), heur.Step1.Wires())
	}
	if res.Step1.TestCycles() > heur.Step1.TestCycles() && res.Step1.Wires() == heur.Step1.Wires() {
		t.Errorf("at equal wires the exact fill %d exceeds the heuristic's %d",
			res.Step1.TestCycles(), heur.Step1.TestCycles())
	}
}

// TestRegistry covers the registry plumbing: lookup spellings, the
// unknown-name error listing valid names, and listing order.
func TestRegistry(t *testing.T) {
	names := solve.Names()
	if len(names) < 3 {
		t.Fatalf("want >= 3 registered solvers, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
	def, err := solve.Get("")
	if err != nil || def.Name() != solve.DefaultName {
		t.Errorf(`Get("") = %v, %v; want the default backend`, def, err)
	}
	if _, err := solve.Get("simplex"); err == nil {
		t.Error("unknown solver did not error")
	} else {
		for _, name := range names {
			if !bytes.Contains([]byte(err.Error()), []byte(name)) {
				t.Errorf("unknown-solver error %q does not list %q", err, name)
			}
		}
	}
	infos := solve.Infos()
	if len(infos) != len(names) {
		t.Fatalf("Infos has %d entries, Names %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("Infos[%d] = %s, want %s", i, info.Name, names[i])
		}
		if info.Description == "" || info.Complexity == "" {
			t.Errorf("%s: incomplete Info: %+v", info.Name, info)
		}
	}
}

// TestSolveUnknownName checks the convenience entry surfaces the registry
// error verbatim.
func TestSolveUnknownName(t *testing.T) {
	s := benchdata.Generate(*conformanceSOC())
	_, err := solve.Solve(context.Background(), "lp-relax", s, conformanceConfig())
	if err == nil {
		t.Fatal("want error for unknown solver")
	}
	if want := fmt.Sprintf("unknown solver %q", "lp-relax"); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}
