// Package multisite implements the multi-site wafer test throughput model
// of the reproduced paper (Section 4): index time, contact test, abort-on-
// fail, contact yield, re-test, and the resulting devices-per-hour
// throughput.
//
// The scanned text of the paper garbles several equations; this package
// re-derives them from the surrounding prose. The reconstruction:
//
//	t  = tc + P'c · tm                       (Eq. 4.1, no abort-on-fail)
//	P'c = 1 − (1 − pc^x)^n                   (Eq. 4.2)
//	P'm = 1 − (1 − pm)^n                     (Eq. 4.3)
//	ta  = tc + P'c · P'm · tm                (Eq. 4.4, abort-on-fail lower
//	                                          bound under "failing devices
//	                                          take zero test time")
//	Dth = 3600 · n / (ti + t)                (Eq. 4.5)
//	Du  = Dth / (1 + (1 − pc^x))             (Eq. 4.6, unique devices per
//	                                          hour when contact failures are
//	                                          re-tested at most once)
//
// where n is the number of sites, x the number of contacted terminals per
// SOC, pc the per-terminal contact yield, and pm the per-SOC manufacturing
// yield. The manufacturing test only runs when at least one of the n sites
// passed its contact test (hence the P'c factor); under abort-on-fail it
// only runs to completion when at least one site keeps passing (P'm).
package multisite

import (
	"fmt"
	"math"
)

// Params gathers the throughput model inputs.
type Params struct {
	// Sites is the number of dies tested in parallel, n ≥ 1.
	Sites int
	// Pins is the number of contacted terminals per SOC, x: the E-RPCT
	// channels plus test control and clock pins.
	Pins int
	// IndexTime ti and ContactTime tc in seconds.
	IndexTime, ContactTime float64
	// TestTime tm is the manufacturing test application time per SOC in
	// seconds (full-length, before any abort-on-fail reduction).
	TestTime float64
	// ContactYield pc is the probability that a single terminal makes
	// proper contact.
	ContactYield float64
	// Yield pm is the probability that a single SOC passes the
	// manufacturing test.
	Yield float64
	// AbortOnFail aborts the test as soon as every site has failed.
	AbortOnFail bool
	// Retest re-tests devices that failed only their contact test
	// (at most once), reducing unique throughput.
	Retest bool
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.Sites < 1 {
		return fmt.Errorf("multisite: need at least 1 site, have %d", p.Sites)
	}
	if p.Pins < 1 {
		return fmt.Errorf("multisite: need at least 1 contacted pin, have %d", p.Pins)
	}
	if p.IndexTime < 0 || p.ContactTime < 0 || p.TestTime < 0 {
		return fmt.Errorf("multisite: negative timing (ti=%g tc=%g tm=%g)",
			p.IndexTime, p.ContactTime, p.TestTime)
	}
	if p.ContactYield < 0 || p.ContactYield > 1 {
		return fmt.Errorf("multisite: contact yield %g outside [0,1]", p.ContactYield)
	}
	if p.Yield < 0 || p.Yield > 1 {
		return fmt.Errorf("multisite: yield %g outside [0,1]", p.Yield)
	}
	return nil
}

// DeviceContactYield returns pc^x: the probability that all x terminals of
// one SOC contact properly.
func DeviceContactYield(pc float64, pins int) float64 {
	return math.Pow(pc, float64(pins))
}

// PContactAny returns P'c (Eq. 4.2): the probability that at least one of
// n SOCs passes its contact test.
func PContactAny(pc float64, pins, n int) float64 {
	pd := DeviceContactYield(pc, pins)
	return 1 - math.Pow(1-pd, float64(n))
}

// PManufAny returns P'm (Eq. 4.3): the probability that at least one of n
// SOCs passes the manufacturing test.
func PManufAny(pm float64, n int) float64 {
	return 1 - math.Pow(1-pm, float64(n))
}

// EffectiveTestTime returns the expected time spent on one touchdown after
// contact (Eq. 4.1, or the Eq. 4.4 lower bound when AbortOnFail is set).
func (p Params) EffectiveTestTime() float64 {
	t := p.ContactTime
	pcAny := PContactAny(p.ContactYield, p.Pins, p.Sites)
	if p.AbortOnFail {
		t += pcAny * PManufAny(p.Yield, p.Sites) * p.TestTime
	} else {
		t += pcAny * p.TestTime
	}
	return t
}

// Throughput returns Dth (Eq. 4.5): devices tested per hour, assuming full
// ATE utilization.
func (p Params) Throughput() float64 {
	return 3600 * float64(p.Sites) / (p.IndexTime + p.EffectiveTestTime())
}

// RetestRate returns the fraction of devices that fail their contact test
// and are therefore re-tested: 1 − pc^x.
func (p Params) RetestRate() float64 {
	return 1 - DeviceContactYield(p.ContactYield, p.Pins)
}

// UniqueThroughput returns Du (Eq. 4.6): unique devices tested per hour.
// Without re-testing it equals Throughput. With re-testing, every
// contact-failing device consumes a second test slot (at most one re-test,
// at most one failing terminal per device per the paper's assumptions), so
// the tested-device stream carries 1 + (1 − pc^x) tests per unique device.
func (p Params) UniqueThroughput() float64 {
	d := p.Throughput()
	if !p.Retest {
		return d
	}
	return d / (1 + p.RetestRate())
}

// DevicesPerTouchdown returns n, for symmetry in reporting code.
func (p Params) DevicesPerTouchdown() int { return p.Sites }

// TouchdownTime returns the full per-touchdown time ti + t in seconds.
func (p Params) TouchdownTime() float64 {
	return p.IndexTime + p.EffectiveTestTime()
}
