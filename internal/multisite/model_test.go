package multisite

import (
	"math"
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		Sites: 4, Pins: 70,
		IndexTime: 0.65, ContactTime: 0.1, TestTime: 1.5,
		ContactYield: 0.9995, Yield: 0.9,
	}
}

func TestValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Sites = 0 },
		func(p *Params) { p.Pins = 0 },
		func(p *Params) { p.IndexTime = -1 },
		func(p *Params) { p.ContactYield = 1.5 },
		func(p *Params) { p.Yield = -0.1 },
	}
	for i, mutate := range bad {
		p := baseParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestDeviceContactYield(t *testing.T) {
	if got := DeviceContactYield(1, 100); got != 1 {
		t.Errorf("pc=1: %g", got)
	}
	got := DeviceContactYield(0.999, 70)
	want := math.Pow(0.999, 70)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pc^x = %g, want %g", got, want)
	}
}

func TestPContactAnySingleSite(t *testing.T) {
	// n = 1 degenerates to pc^x.
	pc, pins := 0.999, 50
	got := PContactAny(pc, pins, 1)
	want := DeviceContactYield(pc, pins)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P'c(n=1) = %g, want %g", got, want)
	}
}

func TestPManufAnyKnown(t *testing.T) {
	// pm = 0.5, n = 2: 1 - 0.25 = 0.75.
	if got := PManufAny(0.5, 2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P'm = %g, want 0.75", got)
	}
	if got := PManufAny(1, 5); got != 1 {
		t.Errorf("P'm(pm=1) = %g", got)
	}
	if got := PManufAny(0, 5); got != 0 {
		t.Errorf("P'm(pm=0) = %g", got)
	}
}

func TestEffectiveTestTimePerfectYield(t *testing.T) {
	p := baseParams()
	p.ContactYield, p.Yield = 1, 1
	// t = tc + tm exactly.
	if got := p.EffectiveTestTime(); math.Abs(got-(0.1+1.5)) > 1e-12 {
		t.Errorf("t = %g, want 1.6", got)
	}
	p.AbortOnFail = true
	if got := p.EffectiveTestTime(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("abort-on-fail with pm=1: t = %g, want 1.6", got)
	}
}

func TestAbortOnFailReducesTime(t *testing.T) {
	p := baseParams()
	p.Yield = 0.5
	p.Sites = 1
	full := p.EffectiveTestTime()
	p.AbortOnFail = true
	aborted := p.EffectiveTestTime()
	if aborted >= full {
		t.Errorf("abort-on-fail did not reduce time: %g >= %g", aborted, full)
	}
	// Expected: tc + pc^x·pm·tm at n=1.
	want := 0.1 + DeviceContactYield(p.ContactYield, p.Pins)*0.5*1.5
	if math.Abs(aborted-want) > 1e-12 {
		t.Errorf("aborted time = %g, want %g", aborted, want)
	}
}

func TestAbortOnFailWashesOutWithSites(t *testing.T) {
	// The paper's Fig. 7(b) claim: the abort-on-fail saving vanishes as
	// n grows, because some site almost surely keeps passing.
	p := baseParams()
	p.Yield = 0.7
	p.AbortOnFail = true
	p.ContactYield = 1
	prev := -1.0
	for n := 1; n <= 10; n++ {
		p.Sites = n
		eff := p.EffectiveTestTime()
		if eff < prev {
			t.Errorf("n=%d: effective time %g decreased below %g", n, eff, prev)
		}
		prev = eff
	}
	full := p.ContactTime + p.TestTime
	if math.Abs(prev-full)/full > 0.001 {
		t.Errorf("at n=10 effective time %g still differs from full %g", prev, full)
	}
}

func TestThroughputKnownValue(t *testing.T) {
	p := Params{Sites: 8, Pins: 70, IndexTime: 0.65, ContactTime: 0.1,
		TestTime: 1.468, ContactYield: 1, Yield: 1}
	// Dth = 3600·8 / (0.65 + 0.1 + 1.468).
	want := 3600 * 8 / (0.65 + 0.1 + 1.468)
	if got := p.Throughput(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Dth = %g, want %g", got, want)
	}
}

func TestUniqueThroughput(t *testing.T) {
	p := baseParams()
	p.Retest = false
	if p.UniqueThroughput() != p.Throughput() {
		t.Error("without re-test, Du must equal Dth")
	}
	p.Retest = true
	f := p.RetestRate()
	want := p.Throughput() / (1 + f)
	if got := p.UniqueThroughput(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Du = %g, want %g", got, want)
	}
	if p.UniqueThroughput() >= p.Throughput() {
		t.Error("re-testing must cost unique throughput")
	}
}

func TestRetestRatePerfectContact(t *testing.T) {
	p := baseParams()
	p.ContactYield = 1
	if got := p.RetestRate(); got != 0 {
		t.Errorf("retest rate = %g, want 0", got)
	}
}

func TestTouchdownTime(t *testing.T) {
	p := baseParams()
	if got, want := p.TouchdownTime(), p.IndexTime+p.EffectiveTestTime(); got != want {
		t.Errorf("TouchdownTime = %g, want %g", got, want)
	}
}

func TestPropertyPContactMonotoneInSites(t *testing.T) {
	f := func(pcRaw uint16, pinsRaw uint8) bool {
		pc := 0.9 + float64(pcRaw%1000)/10000 // 0.9 … 0.9999
		pins := 1 + int(pinsRaw)%200
		prev := 0.0
		for n := 1; n <= 12; n++ {
			cur := PContactAny(pc, pins, n)
			if cur < prev-1e-12 || cur > 1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPContactDecreasesWithPins(t *testing.T) {
	f := func(pcRaw uint16) bool {
		pc := 0.9 + float64(pcRaw%1000)/10000
		prev := 2.0
		for pins := 10; pins <= 500; pins += 70 {
			cur := PContactAny(pc, pins, 4)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyThroughputScalesWithSites(t *testing.T) {
	// With perfect yields, Dth is exactly proportional to n for fixed
	// per-touchdown time.
	f := func(tmRaw uint16) bool {
		tm := 0.1 + float64(tmRaw%3000)/1000
		p := Params{Sites: 1, Pins: 50, IndexTime: 0.65, ContactTime: 0.1,
			TestTime: tm, ContactYield: 1, Yield: 1}
		d1 := p.Throughput()
		p.Sites = 7
		d7 := p.Throughput()
		return math.Abs(d7/d1-7) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAbortNeverIncreasesTime(t *testing.T) {
	f := func(pmRaw, pcRaw uint16, nRaw uint8) bool {
		p := baseParams()
		p.Yield = float64(pmRaw%1001) / 1000
		p.ContactYield = 0.99 + float64(pcRaw%100)/10000
		p.Sites = 1 + int(nRaw)%16
		full := p.EffectiveTestTime()
		p.AbortOnFail = true
		return p.EffectiveTestTime() <= full+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
