// Package gateway is the fleet's front door: a thin, stateless router
// that places every request on the shard owning its content-addressed
// routing key.
//
// The gateway computes the same canonical cache key the serving peers
// do — both sides call server.FleetRouteKey, which wraps the shared
// internal/cachekey derivation — then forwards the request to the ring
// owner with X-Fleet-Routed set, so the peer serves it locally instead
// of 307-redirecting. Responses stream through unbuffered: a sweep's
// NDJSON rows, anytime events, and job-result streams reach the client
// as the shard emits them.
//
// Each peer sits behind its own circuit breaker (internal/resilience).
// A transport-level failure records against the peer's breaker and the
// request retries once on the key's ring successor — the same peer a
// ring rebuilt without the dead member would choose (see
// fleet.Owners) — so a killed shard costs at most one retry per request
// until its breaker opens, and zero thereafter (open breakers are
// skipped outright). HTTP error statuses from a live peer are the
// peer's own answer and pass through untouched; they neither trip
// breakers nor trigger failover.
//
// Shard-qualified job IDs ("s1-j0000000042") route job reads straight
// to their owning shard with no ring lookup. A job on an unreachable
// shard answers 503 with Retry-After — its journal is private to that
// shard, and the durable-jobs contract (accepted jobs survive kill -9
// and resume on reboot) makes retry-later the honest answer.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multisite/internal/fleet"
	"multisite/internal/resilience"
	"multisite/internal/server"
	"multisite/internal/solve"
)

// maxBodyBytes mirrors the serving layer's request-body bound.
const maxBodyBytes = 4 << 20

// readyProbeTimeout bounds one peer readiness probe.
const readyProbeTimeout = 2 * time.Second

// Options tunes a Gateway.
type Options struct {
	// Peers is the full fleet member list (host:port), the same list
	// every serve -peers flag holds. Required.
	Peers []string
	// Replicas overrides the ring's virtual-node count; 0 means
	// fleet.DefaultReplicas. Must match the peers' own setting.
	Replicas int
	// Breaker tunes the per-peer circuit breakers; the zero value takes
	// the resilience defaults.
	Breaker resilience.Options
	// Client overrides the forwarding HTTP client; nil builds one with
	// no overall timeout (streams are long-lived) — cancellation rides
	// the inbound request's context.
	Client *http.Client
	// Logf receives operational log lines; nil means silent.
	Logf func(format string, args ...any)
}

// peerState is the gateway's per-peer bookkeeping.
type peerState struct {
	addr       string
	label      string
	breaker    *resilience.Breaker
	routed     atomic.Int64 // requests forwarded (first choice or failover)
	retried    atomic.Int64 // requests retried AWAY from this peer after it failed
	redirected atomic.Int64 // 307 answers from this peer (ring disagreement)
}

// record feeds one forwarding outcome into the peer's breaker. The
// resilience package classifies failures by solve.ErrTransient (its
// home domain is solver backends); a transport-level failure to reach a
// peer is exactly that kind of retryable fault, so it is wrapped before
// recording. Context cancellations pass through unwrapped — Record
// already knows a departed client says nothing about peer health.
func record(p *peerState, err error) {
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("%w: %v", solve.ErrTransient, err)
	}
	p.breaker.Record(err)
}

// Gateway routes fleet traffic. Build with New; serve via Handler.
type Gateway struct {
	ring   *fleet.Ring
	client *http.Client
	logf   func(string, ...any)

	peers   map[string]*peerState // by address
	byLabel map[string]*peerState // by shard label
	ordered []*peerState          // sorted by address (= label order)

	unrouteable atomic.Int64 // requests no peer could take
}

// New builds a gateway over the given fleet members.
func New(opts Options) (*Gateway, error) {
	members := fleet.NormalizeAddrs(opts.Peers)
	if len(members) == 0 {
		return nil, errors.New("gateway: at least one peer is required")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			// Peers answer 307 only to unrouted requests; the gateway
			// marks everything routed, so any redirect reaching the
			// client library is unexpected — surface it, don't follow.
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g := &Gateway{
		ring:    fleet.New(members, opts.Replicas),
		client:  client,
		logf:    logf,
		peers:   make(map[string]*peerState, len(members)),
		byLabel: make(map[string]*peerState, len(members)),
	}
	breakers := resilience.NewSet(opts.Breaker)
	for _, addr := range g.ring.Members() {
		label, err := fleet.ShardLabel(members, addr)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
		ps := &peerState{addr: addr, label: label, breaker: breakers.For(addr)}
		g.peers[addr] = ps
		g.byLabel[label] = ps
		g.ordered = append(g.ordered, ps)
	}
	sort.Slice(g.ordered, func(i, j int) bool { return g.ordered[i].addr < g.ordered[j].addr })
	return g, nil
}

// Handler returns the HTTP handler serving the gateway's endpoints —
// the peers' public surface plus the gateway's own health and metrics.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range []string{"/v1/optimize", "/v1/sweep", "/v1/compare", "/v1/jobs"} {
		ep := ep
		mux.HandleFunc("POST "+ep, func(w http.ResponseWriter, r *http.Request) {
			g.handleCompute(w, r, ep)
		})
	}
	mux.HandleFunc("GET /v1/jobs", g.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobRead)
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleJobRead)
	mux.HandleFunc("GET /v1/solvers", g.handleAnyPeer)
	mux.HandleFunc("GET /v1/socs", g.handleAnyPeer)
	mux.HandleFunc("GET /healthz", g.handleReadyz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"status\":\"ok\"}\n")
	})
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// handleCompute routes one keyed request: derive the routing key from
// the body (exactly as the owning peer would), pick the owner plus its
// ring successor, and forward with single-retry failover.
func (g *Gateway) handleCompute(w http.ResponseWriter, r *http.Request, endpoint string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %v", err))
		return
	}
	key, status, err := server.FleetRouteKey(endpoint, body)
	if err != nil {
		// Malformed requests die here with the status the peer would
		// have answered; no hop is spent on them.
		writeError(w, status, err)
		return
	}
	owners := g.ring.Owners(key, 2)
	g.forward(w, r, owners, body, key)
}

// forward tries the candidate peers in order: the first whose breaker
// admits the call and whose transport succeeds streams its response
// back. A transport failure records against that peer's breaker and
// moves on; exhausting the candidates is a 502.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, candidates []string, body []byte, key string) {
	var lastErr error
	for i, addr := range candidates {
		ps := g.peers[addr]
		if ps == nil {
			continue
		}
		if err := ps.breaker.Allow(); err != nil {
			// Open breaker: skip without burning a connection attempt.
			lastErr = err
			continue
		}
		resp, err := g.do(r, ps, body)
		record(ps, err)
		if err != nil {
			lastErr = err
			if r.Context().Err() != nil {
				// The client is gone; retrying on its behalf is noise.
				return
			}
			g.logf("gateway: peer %s (%s) failed: %v", ps.addr, ps.label, err)
			if i+1 < len(candidates) {
				ps.retried.Add(1)
			}
			continue
		}
		ps.routed.Add(1)
		if resp.StatusCode == http.StatusTemporaryRedirect {
			// The peer disagrees about ownership — a ring-config skew
			// that must be visible, not silently absorbed. Honor it
			// once, toward the peer the responder named.
			resp.Body.Close()
			ps.redirected.Add(1)
			owner := fleet.NormalizeAddr(resp.Header.Get("X-Fleet-Owner"))
			g.logf("gateway: peer %s redirected key %.12s to %s (ring disagreement)", ps.addr, key, owner)
			target := g.peers[owner]
			if target == nil {
				writeError(w, http.StatusBadGateway,
					fmt.Errorf("peer %s redirected to %q, which is not a fleet member", ps.addr, owner))
				return
			}
			resp2, err := g.do(r, target, body)
			record(target, err)
			if err != nil {
				writeError(w, http.StatusBadGateway, fmt.Errorf("redirect target %s: %v", target.addr, err))
				return
			}
			target.routed.Add(1)
			g.stream(w, resp2)
			return
		}
		g.stream(w, resp)
		return
	}
	g.unrouteable.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no candidate peers")
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("no shard could take the request: %v", lastErr))
}

// do forwards the inbound request to one peer, marked routed. The body
// is replayed from the buffered bytes, which is what makes the
// single-retry failover safe for POSTs.
func (g *Gateway) do(r *http.Request, ps *peerState, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+ps.addr+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set(server.HeaderFleetRouted, "1")
	return g.client.Do(req)
}

// stream copies one peer response to the client without buffering:
// headers and status first, then body chunks flushed as they arrive, so
// NDJSON rows stream end-to-end at the shard's pace.
func (g *Gateway) stream(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleJobRead routes GET /v1/jobs/{id} and /{id}/result by the ID's
// shard prefix. No ring lookup: the shard that accepted a job stamped
// its label into the ID, and only its private journal knows the job.
func (g *Gateway) handleJobRead(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	label, _, ok := fleet.SplitShardID(id)
	if !ok {
		// An unqualified ID predates fleet mode (or came from a
		// single-node deployment); probe every reachable shard.
		g.probeJob(w, r)
		return
	}
	ps := g.byLabel[label]
	if ps == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %s names shard %s, which is not in this fleet", id, label))
		return
	}
	if err := ps.breaker.Allow(); err != nil {
		g.shardDown(w, ps)
		return
	}
	resp, err := g.do(r, ps, nil)
	record(ps, err)
	if err != nil {
		g.shardDown(w, ps)
		return
	}
	ps.routed.Add(1)
	g.stream(w, resp)
}

// shardDown answers a read whose owning shard is unreachable: 503 with
// Retry-After. The job is durable in that shard's journal — it will
// answer (or resume the job) when it returns; a 404 or a silent
// failover would be a lie.
func (g *Gateway) shardDown(w http.ResponseWriter, ps *peerState) {
	g.unrouteable.Add(1)
	w.Header().Set("Retry-After", "5")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("shard %s (%s) is unreachable; its jobs are durable and resume when it returns", ps.label, ps.addr))
}

// probeJob tries every peer for an unqualified job ID, returning the
// first non-404 answer.
func (g *Gateway) probeJob(w http.ResponseWriter, r *http.Request) {
	for _, ps := range g.ordered {
		if ps.breaker.Allow() != nil {
			continue
		}
		resp, err := g.do(r, ps, nil)
		record(ps, err)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		ps.routed.Add(1)
		g.stream(w, resp)
		return
	}
	writeError(w, http.StatusNotFound, errors.New("job not found on any reachable shard"))
}

// handleJobList merges every reachable shard's job list into one
// response. Unreachable shards are skipped and named in X-Fleet-Partial
// — a partial list labeled partial beats an error that hides the
// healthy shards' jobs.
func (g *Gateway) handleJobList(w http.ResponseWriter, r *http.Request) {
	type listResp struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	var (
		mu      sync.Mutex
		merged  []json.RawMessage
		missing []string
		wg      sync.WaitGroup
	)
	for _, ps := range g.ordered {
		ps := ps
		wg.Add(1)
		go func() {
			defer wg.Done()
			skip := func() {
				mu.Lock()
				missing = append(missing, ps.label)
				mu.Unlock()
			}
			if ps.breaker.Allow() != nil {
				skip()
				return
			}
			resp, err := g.do(r, ps, nil)
			record(ps, err)
			if err != nil {
				skip()
				return
			}
			defer resp.Body.Close()
			var lr listResp
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&lr) != nil {
				skip()
				return
			}
			ps.routed.Add(1)
			mu.Lock()
			merged = append(merged, lr.Jobs...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Deterministic order: shard-qualified IDs sort by shard then
	// sequence, so the merged view is stable across gateways.
	sort.Slice(merged, func(i, j int) bool { return jobID(merged[i]) < jobID(merged[j]) })
	sort.Strings(missing)
	if len(missing) > 0 {
		w.Header().Set("X-Fleet-Partial", strings.Join(missing, ","))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Jobs []json.RawMessage `json:"jobs"`
	}{merged})
}

// jobID extracts the "id" field of one job snapshot for merge ordering.
func jobID(raw json.RawMessage) string {
	var v struct {
		ID string `json:"id"`
	}
	json.Unmarshal(raw, &v)
	return v.ID
}

// handleAnyPeer forwards a shard-agnostic GET (solver and SOC listings
// are identical on every peer) to the first reachable peer.
func (g *Gateway) handleAnyPeer(w http.ResponseWriter, r *http.Request) {
	var lastErr error
	for _, ps := range g.ordered {
		if err := ps.breaker.Allow(); err != nil {
			lastErr = err
			continue
		}
		resp, err := g.do(r, ps, nil)
		record(ps, err)
		if err != nil {
			lastErr = err
			continue
		}
		ps.routed.Add(1)
		g.stream(w, resp)
		return
	}
	g.unrouteable.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no peers configured")
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("no reachable peer: %v", lastErr))
}

// handleReadyz probes every peer's /readyz concurrently. The gateway is
// ready while at least one shard is — it can still route that shard's
// slice of the key space — and the body names each peer's state either
// way. /healthz aliases this, matching the peers' own convention.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	states := make(map[string]string, len(g.ordered))
	var (
		mu    sync.Mutex
		ready int
		wg    sync.WaitGroup
	)
	for _, ps := range g.ordered {
		ps := ps
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := "down"
			ctx, cancel := context.WithTimeout(r.Context(), readyProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "GET", "http://"+ps.addr+"/readyz", nil)
			if err == nil {
				if resp, err := g.client.Do(req); err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						state = "ready"
					} else {
						state = "starting"
					}
				}
			}
			mu.Lock()
			states[ps.label] = state
			if state == "ready" {
				ready++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	status := "ready"
	if ready == 0 {
		status = "down"
		w.WriteHeader(http.StatusServiceUnavailable)
	} else if ready < len(g.ordered) {
		status = "degraded"
	}
	json.NewEncoder(w).Encode(struct {
		Status string            `json:"status"`
		Ready  int               `json:"ready"`
		Peers  map[string]string `json:"peers"`
	}{status, ready, states})
}

// handleMetrics renders the gateway's fleet counters in Prometheus text
// format, one labeled sample per peer.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	header := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	header("multisite_fleet_ring_members", "Fleet members on the gateway's consistent-hash ring.", "gauge")
	fmt.Fprintf(w, "multisite_fleet_ring_members %d\n", g.ring.Len())
	header("multisite_fleet_peer_healthy", "1 while the peer's circuit breaker is closed (0 = open or half-open).", "gauge")
	for _, ps := range g.ordered {
		healthy := 0
		if ps.breaker.Snapshot().State == resilience.Closed {
			healthy = 1
		}
		fmt.Fprintf(w, "multisite_fleet_peer_healthy{peer=%q,shard=%q} %d\n", ps.addr, ps.label, healthy)
	}
	header("multisite_fleet_routed_total", "Requests forwarded to the peer (first choice or failover target).", "counter")
	for _, ps := range g.ordered {
		fmt.Fprintf(w, "multisite_fleet_routed_total{peer=%q,shard=%q} %d\n", ps.addr, ps.label, ps.routed.Load())
	}
	header("multisite_fleet_retried_total", "Requests retried on the ring successor after the peer failed at the transport level.", "counter")
	for _, ps := range g.ordered {
		fmt.Fprintf(w, "multisite_fleet_retried_total{peer=%q,shard=%q} %d\n", ps.addr, ps.label, ps.retried.Load())
	}
	header("multisite_fleet_redirected_total", "307 answers from the peer (ring disagreement between gateway and peer; should stay 0).", "counter")
	for _, ps := range g.ordered {
		fmt.Fprintf(w, "multisite_fleet_redirected_total{peer=%q,shard=%q} %d\n", ps.addr, ps.label, ps.redirected.Load())
	}
	header("multisite_fleet_breaker_trips_total", "Circuit-breaker transitions into open, per peer.", "counter")
	for _, ps := range g.ordered {
		fmt.Fprintf(w, "multisite_fleet_breaker_trips_total{peer=%q,shard=%q} %d\n", ps.addr, ps.label, ps.breaker.Snapshot().Trips)
	}
	header("multisite_fleet_unrouteable_total", "Requests no peer could take (all candidates down or a dead shard's job read).", "counter")
	fmt.Fprintf(w, "multisite_fleet_unrouteable_total %d\n", g.unrouteable.Load())
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
