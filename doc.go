// Package multisite is a reproduction of Goel & Marinissen, "On-Chip Test
// Infrastructure Design for Optimal Multi-Site Testing of System Chips"
// (DATE 2005): a library, toolset, and experiment harness for designing
// the on-chip DfT — E-RPCT wrapper, TAMs, and core test wrappers — that
// maximizes multi-site wafer-test throughput on a fixed ATE.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables, examples/ runnable walkthroughs,
// and bench_test.go in this directory regenerates every table and figure
// of the paper's evaluation. Fleet-scale sweeps — SOC × ATE × cost-model
// grids — run on the concurrent engine (internal/engine, README.md) with
// results byte-identical at any worker count, and cmd/serve exposes the
// optimizer and sweep grid as a long-running HTTP/JSON service behind a
// content-addressed result cache (internal/server, DESIGN.md §8).
package multisite
