module multisite

go 1.24
