// Abort-on-fail study: how much test time does aborting at the first
// failing device really save, and how fast does multi-site testing erase
// that saving? This example goes beyond the paper's closed-form lower
// bound (Eq. 4.4) by simulating actual touchdowns — faults are injected
// into random modules, the cycle at which each site's first failing
// response bit reaches the tester is observed, and the test aborts only
// when every contacted site has started failing. It also shows the
// scheduling extension: reordering modules inside channel groups to drag
// likely failures forward.
//
//	go run ./examples/abort_study
package main

import (
	"fmt"
	"log"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/sched"
	"multisite/internal/sim"
	"multisite/internal/tam"
)

func main() {
	chip := benchdata.Shared("d695")
	target := ate.ATE{Channels: 256, Depth: 64 << 10, ClockHz: 5e6}
	arch, err := tam.DesignStep1(chip, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: k=%d channels, %d cycles full test\n\n",
		chip.Name, arch.Channels(), arch.TestCycles())

	// Simulated mean saving per touchdown, by site count and yield.
	const pins = 32
	fmt.Println("mean test-time saving from abort-on-fail (simulated, 400 touchdowns):")
	fmt.Println("yield | n=1     n=2     n=4     n=8")
	for _, yield := range []float64{0.9, 0.7, 0.5} {
		fmt.Printf(" %.1f  |", yield)
		for _, n := range []int{1, 2, 4, 8} {
			s, err := sim.ExpectedAbortSavings(arch, n, pins, 1, yield, 400, 42)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %5.1f%% ", 100*s)
		}
		fmt.Println()
	}
	fmt.Println("→ the paper's Fig. 7(b) claim, observed in simulation: beyond a few")
	fmt.Println("  sites, some site keeps passing and the full test always runs")

	// Scheduling extension at a single site: reorder groups so fragile,
	// short modules run first.
	fmt.Println("\nratio-rule scheduling (single site, volume-weighted module yields):")
	for _, yield := range []float64{0.8, 0.5} {
		y := sched.VolumeWeightedYield(arch, yield)
		before := sched.ExpectedCycles(arch, y)
		clone := arch.Clone()
		sched.Reorder(clone, y)
		after := sched.ExpectedCycles(clone, y)
		fmt.Printf("  chip yield %.1f: E[cycles] %0.f → %0.f (%.2f%% saved)\n",
			yield, before, after, 100*(before-after)/before)
	}
	fmt.Println("→ ordering is free (fills unchanged) but buys little when defects")
	fmt.Println("  are spread evenly; it pays when one fragile module dominates")
}
