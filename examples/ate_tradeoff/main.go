// ATE buying guide: given a chip and a budget, is it better to buy more
// tester channels or deeper vector memory? Reproduces the paper's
// Section 7 economics on any SOC and sweeps the upgrade budget.
//
//	go run ./examples/ate_tradeoff
package main

import (
	"fmt"
	"log"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/core"
)

func main() {
	chip := benchdata.Shared("p93791")
	base := ate.ATE{Channels: 256, Depth: 2 << 20, ClockHz: 5e6}
	probe := ate.DefaultProbeStation()
	prices := ate.DefaultPriceModel()

	optimize := func(a ate.ATE) *core.Result {
		res, err := core.Optimize(chip, core.Config{ATE: a, Probe: probe})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	baseline := optimize(base)
	fmt.Printf("chip %s on base ATE (N=%d, D=%dM): n=%d sites, Dth=%.0f devices/hour\n\n",
		chip.Name, base.Channels, base.Depth>>20, baseline.Best.Sites, baseline.Best.Throughput)

	fmt.Println("budget (USD) | +channels Dth (gain) | double-depth-equivalent Dth (gain)")
	for _, budget := range []float64{6000, 12000, 24000, 48000} {
		// Option A: spend it all on extra channels.
		extra := prices.ChannelsForBudgetUSD(budget)
		wide := optimize(ate.ATE{Channels: base.Channels + extra, Depth: base.Depth, ClockHz: base.ClockHz})

		// Option B: spend it on deeper memory. The price model doubles
		// depth for ChannelBlockSize channels per DepthDoubleBlockUSD,
		// so the budget fixes how many channels can be deepened; we
		// model the all-or-nothing upgrade the paper discusses by
		// scaling depth when the budget covers the whole ATE.
		fullDouble := prices.DoubleDepthCostUSD(base)
		depth := base.Depth
		if budget >= fullDouble {
			depth = base.Depth * 2
		} else {
			// Partial budget: deepen proportionally (vendors sell
			// fractional-depth upgrades in practice).
			depth = base.Depth + int64(float64(base.Depth)*budget/fullDouble)
		}
		deep := optimize(ate.ATE{Channels: base.Channels, Depth: depth, ClockHz: base.ClockHz})

		gainW := 100 * (wide.Best.Throughput/baseline.Best.Throughput - 1)
		gainD := 100 * (deep.Best.Throughput/baseline.Best.Throughput - 1)
		verdict := "channels"
		if deep.Best.Throughput > wide.Best.Throughput {
			verdict = "memory"
		}
		fmt.Printf("%12.0f | %8.0f (%+5.1f%%)     | %8.0f (%+5.1f%%)  -> buy %s\n",
			budget, wide.Best.Throughput, gainW, deep.Best.Throughput, gainD, verdict)
	}

	fmt.Println("\nthe paper's conclusion (Section 7): at equal cost, deeper vector")
	fmt.Println("memory beats extra channels, because memory is ~5x cheaper per")
	fmt.Println("channel and throughput still grows (sub-linearly) with depth")
}
