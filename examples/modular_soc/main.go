// Modular SOC walkthrough: load an ITC'02-style description, design the
// channel-group architecture and the E-RPCT wrapper, then cross-check the
// analytic test length against the cycle-accurate simulator — including a
// fault-injection run showing when abort-on-fail would trigger.
//
//	go run ./examples/modular_soc
package main

import (
	"fmt"
	"log"
	"os"

	"multisite/internal/ate"
	"multisite/internal/rpct"
	"multisite/internal/sim"
	"multisite/internal/soc"
	"multisite/internal/tam"
)

// The chip under test, in the textual format of internal/soc. In a real
// flow this would live in a .soc file next to the design database.
const chipDescription = `
SocName demo-soc
TotalModules 5
Module 0 Name top Level 0 Inputs 96 Outputs 64 Bidirs 16 TotalPatterns 0 ScanChains 0
Module 1 Name cpu Level 1 Inputs 70 Outputs 52 Bidirs 0 TotalPatterns 220 ScanChains 8 : 120 118 115 112 110 108 105 102
Module 2 Name gpu Level 1 Inputs 58 Outputs 66 Bidirs 0 TotalPatterns 340 ScanChains 12 : 90 90 88 88 86 86 84 84 82 82 80 80
Module 3 Name dma Level 1 Inputs 33 Outputs 25 Bidirs 0 TotalPatterns 95 ScanChains 2 : 76 74
Module 4 Name sram Level 1 Inputs 40 Outputs 26 Bidirs 0 TotalPatterns 1500 Memory true ScanChains 0
`

func main() {
	chip, err := soc.ParseString(chipDescription)
	if err != nil {
		log.Fatal(err)
	}

	target := ate.ATE{Channels: 64, Depth: 200_000, ClockHz: 10e6}
	arch, err := tam.DesignStep1(chip, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(arch.String())

	// The E-RPCT wrapper turns the architecture's TAM wires into a
	// narrow probed interface; all other pins ride the boundary scan.
	w, err := rpct.Design(arch, arch.Channels(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nE-RPCT: %d-in/%d-out, ratio %d, %d boundary cells, %d probed pads\n",
		w.ExternalIn, w.ExternalOut, w.ConvertRatio, w.BoundaryCells, w.ContactedPins())

	// Cross-check the analytic cycle count with the bit-accurate
	// simulator: every scan shift, capture, and drain is executed.
	clean, err := sim.Run(arch, sim.BitAccurate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %d cycles; analytic model says %d (match=%v)\n",
		clean.Cycles, arch.TestCycles(), clean.Cycles == arch.TestCycles())

	// Inject a stuck bit in the CPU from pattern 10 onward and observe
	// when the tester would see the first failing response.
	var cpu int
	for i := range chip.Modules {
		if chip.Modules[i].Name == "cpu" {
			cpu = i
		}
	}
	faulty, err := sim.Run(arch, sim.BitAccurate,
		sim.Fault{Module: cpu, Chain: 0, Bit: 3, FirstPattern: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected fault first observed at cycle %d of %d (%.1f%% into the test)\n",
		faulty.FirstFailCycle, faulty.Cycles,
		100*float64(faulty.FirstFailCycle)/float64(faulty.Cycles))
	fmt.Println("with abort-on-fail and a single site, the remaining cycles would be skipped")

	// Emit the wrapper netlist skeleton for the DfT hand-off.
	fmt.Println()
	if err := w.WriteNetlist(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
