// Quickstart: design the on-chip test infrastructure of a small modular
// SOC for optimal multi-site testing on a mid-range ATE, in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multisite/internal/ate"
	"multisite/internal/core"
	"multisite/internal/soc"
)

func main() {
	// An SOC with three embedded cores: one combinational, two scan-
	// tested. Terminal counts, scan chains, and pattern counts are all
	// the optimizer needs.
	chip := &soc.SOC{Name: "quickstart", Modules: []soc.Module{
		{ID: 1, Name: "alu", Inputs: 64, Outputs: 32, Patterns: 1200},
		{ID: 2, Name: "dsp", Inputs: 40, Outputs: 40, Patterns: 3000,
			ScanChains: soc.UniformChains(8, 96)},
		{ID: 3, Name: "uart", Inputs: 12, Outputs: 8, Patterns: 900,
			ScanChains: soc.ChainsOfLengths(64, 60)},
	}}

	cfg := core.Config{
		// The fixed target test cell: a 64-channel ATE with 512 K
		// vectors per channel at 10 MHz, and a probe station that
		// needs 0.5 s to index and 0.1 s for the contact test.
		ATE:   ate.ATE{Channels: 64, Depth: 512 << 10, ClockHz: 10e6},
		Probe: ate.ProbeStation{IndexTime: 0.5, ContactTime: 0.1},
	}

	res, err := core.Optimize(chip, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Step 1 needs k=%d ATE channels per SOC -> up to %d sites in parallel\n",
		res.Step1.Channels(), res.MaxSites)
	fmt.Printf("Optimal multi-site: n=%d sites at k=%d channels each\n",
		res.Best.Sites, res.Best.Channels)
	fmt.Printf("Test time per touchdown: %.4f s, throughput %.0f devices/hour\n",
		res.Best.TestTimeSec, res.Best.Throughput)

	fmt.Println("\nThroughput by site count (Step1+2 vs Step1-only):")
	for n := 1; n <= res.MaxSites; n++ {
		fmt.Printf("  n=%2d  Dth=%8.0f  (step1-only %8.0f)\n",
			n, res.Curve[n-1].Throughput, res.Step1Curve[n-1].Throughput)
	}
}
