// Wafer test floor: validate the paper's closed-form throughput model
// (Equations 4.1–4.6) against a Monte-Carlo simulation of touchdowns with
// random contact and manufacturing failures, then layer in the wafer
// geometry the paper abstracts away.
//
//	go run ./examples/wafer_floor
package main

import (
	"fmt"
	"log"

	"multisite/internal/ate"
	"multisite/internal/benchdata"
	"multisite/internal/core"
	"multisite/internal/multisite"
	"multisite/internal/wafer"
	"multisite/internal/wafersim"
)

func main() {
	// Design the PNX8550-class chip for its target test cell.
	pnx := benchdata.Shared("pnx8550")
	cfg := core.Config{
		ATE:   ate.ATE{Channels: 512, Depth: 7 << 20, ClockHz: 5e6},
		Probe: ate.DefaultProbeStation(),
	}
	res, err := core.Optimize(pnx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal operating point: n=%d sites, k=%d channels, tm=%.3f s\n\n",
		res.Best.Sites, res.Best.Channels, res.Best.TestTimeSec)

	// Monte-Carlo vs analytic, across contact yields.
	params := multisite.Params{
		Sites: res.Best.Sites, Pins: res.Best.Channels + core.DefaultControlPins,
		IndexTime: cfg.Probe.IndexTime, ContactTime: cfg.Probe.ContactTime,
		TestTime: res.Best.TestTimeSec,
		Yield:    0.9, AbortOnFail: true, Retest: true,
	}
	fmt.Println("contact yield | analytic Du | simulated Du | rel err")
	for _, pc := range []float64{1, 0.9999, 0.999, 0.998} {
		p := params
		p.ContactYield = pc
		st, err := wafersim.Run(wafersim.Config{
			Params: p, Touchdowns: 50_000, Seed: 2005,
		})
		if err != nil {
			log.Fatal(err)
		}
		analytic := p.UniqueThroughput()
		relErr := (st.UniqueThroughput - analytic) / analytic
		fmt.Printf("%13g | %11.0f | %12.0f | %+.3f%%\n",
			pc, analytic, st.UniqueThroughput, 100*relErr)
	}

	// The paper ignores wafer-periphery losses; quantify them for this
	// operating point on a 300 mm wafer with 8x8 mm dies.
	layout := wafer.Layout{
		WaferDiameterMM: 300, DieWidthMM: 8, DieHeightMM: 8,
		SitesX: res.Best.Sites, SitesY: 1,
	}
	plan := layout.Step()
	p := params
	p.ContactYield = 0.999
	perTouchdown := p.TouchdownTime()
	fmt.Printf("\nwafer map: %d dies, %d touchdowns with a %dx1 probe card\n",
		layout.DieCount(), plan.Touchdowns, res.Best.Sites)
	fmt.Printf("probe-card utilization %.3f (paper assumes 1.0) -> effective Dth %.0f\n",
		plan.Utilization(), p.Throughput()*plan.Utilization())
	fmt.Printf("one wafer takes %.1f minutes at %.2f s per touchdown\n",
		layout.WaferTestHours(perTouchdown)*60, perTouchdown)
}
